#include "report/report.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "obs/export.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/strings.hpp"

namespace ascdg::report {

namespace {

using util::Cell;
using util::CellColor;

CellColor status_color(coverage::HitStatus status) {
  switch (status) {
    case coverage::HitStatus::kNever:
      return CellColor::kRed;
    case coverage::HitStatus::kLightly:
      return CellColor::kOrange;
    case coverage::HitStatus::kWell:
      return CellColor::kGreen;
  }
  return CellColor::kDefault;
}

/// The four phases of a flow result, in report order.
std::array<const flow::PhaseOutcome*, 4> phases_of(const flow::FlowResult& flow) {
  return {&flow.before, &flow.sampling_phase, &flow.optimization_phase,
          &flow.harvest_phase};
}

}  // namespace

util::Table phase_table(const coverage::CoverageSpace& space,
                        std::span<const coverage::EventId> family_events,
                        const flow::FlowResult& flow) {
  std::vector<std::string> headers{"Event"};
  for (const auto* phase : phases_of(flow)) {
    headers.push_back(phase->name + " #hits");
    headers.push_back("hit rate");
  }
  util::Table table(headers);
  for (const auto event : family_events) {
    std::vector<Cell> row;
    row.push_back({space.name(event), CellColor::kBold});
    for (const auto* phase : phases_of(flow)) {
      const std::size_t hits = phase->stats.sims() > 0 ? phase->stats.hits(event) : 0;
      const double rate =
          phase->stats.sims() > 0 ? phase->stats.hit_rate(event) : 0.0;
      const CellColor color = status_color(
          coverage::classify_hits(hits, phase->stats.sims()));
      row.push_back({util::format_count(hits), color});
      row.push_back({util::format_percent(rate), color});
    }
    table.add_row(std::move(row));
  }
  return table;
}

StatusCounts count_status(const coverage::SimStats& stats,
                          std::span<const coverage::EventId> events) {
  StatusCounts counts;
  for (const auto event : events) {
    const std::size_t hits = stats.sims() > 0 ? stats.hits(event) : 0;
    switch (coverage::classify_hits(hits, stats.sims())) {
      case coverage::HitStatus::kNever:
        ++counts.never;
        break;
      case coverage::HitStatus::kLightly:
        ++counts.lightly;
        break;
      case coverage::HitStatus::kWell:
        ++counts.well;
        break;
    }
  }
  return counts;
}

util::Table status_table(const coverage::CoverageSpace& space,
                         std::span<const coverage::EventId> events,
                         const flow::FlowResult& flow) {
  (void)space;
  util::Table table({"Phase", "never-hit", "lightly-hit", "well-hit", "sims"});
  for (const auto* phase : phases_of(flow)) {
    const StatusCounts counts = count_status(phase->stats, events);
    table.add_row(std::vector<Cell>{
        {phase->name, CellColor::kBold},
        {std::to_string(counts.never), CellColor::kRed},
        {std::to_string(counts.lightly), CellColor::kOrange},
        {std::to_string(counts.well), CellColor::kGreen},
        {util::format_count(phase->sims), CellColor::kDefault}});
  }
  return table;
}

void render_status_bars(std::ostream& os,
                        std::span<const coverage::EventId> events,
                        const flow::FlowResult& flow, bool use_color) {
  const std::size_t total = events.size();
  if (total == 0) return;
  constexpr std::size_t kWidth = 64;
  const char* red = use_color ? "\x1b[31m" : "";
  const char* orange = use_color ? "\x1b[33m" : "";
  const char* green = use_color ? "\x1b[32m" : "";
  const char* reset = use_color ? "\x1b[0m" : "";

  for (const auto* phase : phases_of(flow)) {
    const StatusCounts counts = count_status(phase->stats, events);
    const auto bar_len = [&](std::size_t n) {
      return (n * kWidth + total / 2) / total;
    };
    os << "  " << phase->name << std::string(
        phase->name.size() < 22 ? 22 - phase->name.size() : 1, ' ')
       << '[';
    os << red << std::string(bar_len(counts.never), '#') << reset;
    os << orange << std::string(bar_len(counts.lightly), '=') << reset;
    os << green << std::string(bar_len(counts.well), '+') << reset;
    const std::size_t used =
        bar_len(counts.never) + bar_len(counts.lightly) + bar_len(counts.well);
    if (used < kWidth) os << std::string(kWidth - used, ' ');
    os << "]  never=" << counts.never << " lightly=" << counts.lightly
       << " well=" << counts.well << '\n';
  }
}

void render_trace(std::ostream& os, const opt::OptResult& result,
                  std::size_t height) {
  if (result.trace.empty()) {
    os << "  (no optimization iterations)\n";
    return;
  }
  double lo = result.trace.front().best_value;
  double hi = lo;
  for (const auto& record : result.trace) {
    lo = std::min(lo, record.best_value);
    hi = std::max(hi, record.best_value);
  }
  if (hi == lo) hi = lo + 1.0;
  const std::size_t columns = result.trace.size();

  // Top to bottom rows of the plot.
  for (std::size_t row = height; row-- > 0;) {
    const double level = lo + (hi - lo) * static_cast<double>(row) /
                                  static_cast<double>(height - 1);
    char label[32];
    std::snprintf(label, sizeof label, "%8.3f |", level);
    os << label;
    for (std::size_t c = 0; c < columns; ++c) {
      const double v = result.trace[c].best_value;
      const double cell = (v - lo) / (hi - lo) * static_cast<double>(height - 1);
      os << (std::llround(cell) == static_cast<long long>(row) ? " *  " : "    ");
    }
    os << '\n';
  }
  os << "         +";
  for (std::size_t c = 0; c < columns; ++c) os << "----";
  os << "\n          ";
  for (std::size_t c = 0; c < columns; ++c) {
    char label[32];
    std::snprintf(label, sizeof label, "%3zu ", c + 1);
    os << label;
  }
  os << "  (iteration)\n";
}

void render_session(std::ostream& os, const flow::SessionSummary& session) {
  os << "Session directory: `" << session.dir << "`  \n"
     << "Seed: " << session.seed << "  \n"
     << "Resumes: " << session.resumes;
  if (!session.resumed_from.empty()) {
    os << " (last resumed from: " << session.resumed_from << ")";
  }
  os << "\n\n"
     << "| stage | status | sims | wall ms |\n"
     << "| --- | --- | ---: | ---: |\n";
  for (const auto& stage : session.stages) {
    os << "| " << stage.name << " | " << stage.status << " | " << stage.sims
       << " | " << util::format_number(stage.wall_ms, 1) << " |\n";
  }
}

void write_flow_markdown(const std::filesystem::path& path,
                         const coverage::CoverageSpace& space,
                         std::span<const coverage::EventId> family_events,
                         const flow::FlowResult& flow,
                         const batch::TelemetrySnapshot* farm,
                         const flow::SessionSummary* session) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) {
      throw util::Error("cannot create directory '" +
                        path.parent_path().string() + "': " + ec.message());
    }
  }
  std::ofstream os(path);
  if (!os) {
    throw util::Error("cannot open '" + path.string() + "' for writing");
  }

  os << "# AS-CDG flow report\n\n"
     << "Seed template: `" << flow.seed_template << "`\n\n"
     << phase_caption(flow) << "\n\n"
     << "## Hit statistics per phase\n\n";
  phase_table(space, family_events, flow).render_markdown(os);

  os << "\n## Status summary\n\n";
  status_table(space, family_events, flow).render_markdown(os);

  os << "\n## Optimization progress\n\n"
     << "| iteration | center value | best value | step | evals | moved "
        "| resampled | halved |\n"
     << "| ---: | ---: | ---: | ---: | ---: | --- | --- | --- |\n";
  for (const auto& record : flow.optimization.trace) {
    os << "| " << record.iteration + 1 << " | " << record.center_value
       << " | " << record.best_value << " | " << record.step << " | "
       << record.evaluations << " | " << (record.moved ? "yes" : "no")
       << " | " << (record.resamples != 0 ? "yes" : "no") << " | "
       << (record.halved ? "yes" : "no") << " |\n";
  }

  const obs::MetricsSnapshot metrics = obs::registry().snapshot();
  os << '\n';
  render_convergence(os, space, flow, &metrics);

  os << "\n## Run telemetry\n\n";
  telemetry_table(flow).render_markdown(os);
  if (farm != nullptr) {
    os << '\n';
    render_farm_telemetry(os, *farm);
  }

  os << "\n## Run health\n\n";
  render_run_health(os, metrics);

  if (session != nullptr) {
    os << "\n## Session\n\n";
    render_session(os, *session);
  }

  os << "\n## Harvested test-template\n\n```\n"
     << tgen::to_text(flow.best_template) << "```\n";
  os.flush();
  if (!os) {
    throw util::Error("failed writing '" + path.string() + "'");
  }
}

util::Table telemetry_table(const flow::FlowResult& flow) {
  util::Table table({"Phase", "sims", "share", "wall ms", "sims/s"});
  const std::array<const flow::PhaseOutcome*, 3> flow_phases{
      &flow.sampling_phase, &flow.optimization_phase, &flow.harvest_phase};
  const std::size_t total = flow.flow_sims();
  double total_ms = 0.0;
  const auto fmt = [](double v, const char* spec) {
    char buf[32];
    std::snprintf(buf, sizeof buf, spec, v);
    return std::string(buf);
  };
  for (const auto* phase : flow_phases) {
    total_ms += phase->wall_ms;
    const double share =
        total == 0 ? 0.0
                   : static_cast<double>(phase->sims) /
                         static_cast<double>(total);
    const double rate =
        phase->wall_ms > 0.0
            ? static_cast<double>(phase->sims) / (phase->wall_ms / 1000.0)
            : 0.0;
    table.add_row(std::vector<Cell>{{phase->name, CellColor::kBold},
                                    {util::format_count(phase->sims)},
                                    {fmt(100.0 * share, "%.1f%%")},
                                    {fmt(phase->wall_ms, "%.2f")},
                                    {util::format_count(
                                        static_cast<std::size_t>(rate))}});
  }
  const double total_rate =
      total_ms > 0.0 ? static_cast<double>(total) / (total_ms / 1000.0) : 0.0;
  table.add_row(std::vector<Cell>{
      {"Flow total", CellColor::kBold},
      {util::format_count(total)},
      {"100.0%"},
      {fmt(total_ms, "%.2f")},
      {util::format_count(static_cast<std::size_t>(total_rate))}});
  return table;
}

void render_farm_telemetry(std::ostream& os,
                           const batch::TelemetrySnapshot& farm) {
  os << "Farm counters: " << util::format_count(farm.simulations)
     << " sims in " << util::format_count(farm.chunks) << " chunks ("
     << util::format_count(farm.enqueued) << " enqueued, "
     << util::format_count(farm.steals) << " stolen, peak queue depth "
     << farm.max_queue_depth << ", " << farm.exceptions << " exceptions, "
     << farm.runs << " runs).\n\n";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.1f", farm.mean_chunk_us());
  os << "Mean chunk wall time: " << buf << " us.\n";
  bool any = false;
  for (const std::size_t count : farm.chunk_latency) any = any || count != 0;
  if (!any) return;
  os << "\nChunk latency histogram (log2 us buckets):\n\n"
     << "| bucket | chunks |\n| --- | ---: |\n";
  for (std::size_t i = 0; i < farm.chunk_latency.size(); ++i) {
    if (farm.chunk_latency[i] == 0) continue;
    os << "| [" << (1ull << i) << ", " << (1ull << (i + 1)) << ") us | "
       << farm.chunk_latency[i] << " |\n";
  }
}

void render_run_health(std::ostream& os, const obs::MetricsSnapshot& snapshot) {
  const auto gauge = [&](std::string_view name) -> std::int64_t {
    const obs::MetricSample* sample = snapshot.find(name);
    return sample != nullptr ? sample->gauge : 0;
  };
  const auto counter_sum = [&](std::string_view name) -> std::uint64_t {
    std::uint64_t total = 0;
    for (const auto& sample : snapshot.samples) {
      if (sample.name == name) total += sample.counter;
    }
    return total;
  };
  const auto mib = [](std::int64_t bytes) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
    return std::string(buf);
  };

  if (snapshot.find("ascdg_proc_rss_bytes") != nullptr) {
    os << "Process: RSS " << mib(gauge("ascdg_proc_rss_bytes"))
       << " MiB (peak " << mib(gauge("ascdg_proc_max_rss_bytes"))
       << " MiB), CPU " << gauge("ascdg_proc_cpu_user_ms") << " ms user + "
       << gauge("ascdg_proc_cpu_system_ms") << " ms system, "
       << gauge("ascdg_proc_major_faults") << " major faults.\n\n";
  }

  const std::uint64_t stalls = counter_sum("ascdg_watchdog_stalls_total");
  if (snapshot.find("ascdg_watchdog_stalls_total") != nullptr) {
    os << "Watchdog: "
       << (stalls == 0 ? std::string("no stalls detected")
                       : std::to_string(stalls) + " stall(s) detected")
       << ".\n\n";
  }

  bool any_farm = false;
  for (const auto& sample : snapshot.samples) {
    if (sample.name != "ascdg_farm_worker_busy_fraction") continue;
    if (!any_farm) os << "Worker utilization since farm start:\n\n";
    any_farm = true;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%",
                  static_cast<double>(sample.gauge) / 1e4);
    os << "  * farm {" << sample.labels << "}: " << buf << " busy\n";
  }
  if (any_farm) os << '\n';

  bool any_phase = false;
  for (const auto& sample : snapshot.samples) {
    if (sample.name != "ascdg_phase_cpu_ms") continue;
    if (!any_phase) {
      os << "Per-phase footprint:\n\n"
         << "| phase | CPU ms | RSS at end |\n| --- | ---: | ---: |\n";
    }
    any_phase = true;
    const obs::MetricSample* rss =
        snapshot.find("ascdg_phase_rss_bytes", sample.labels);
    os << "| {" << sample.labels << "} | " << sample.gauge << " | "
       << (rss != nullptr ? mib(rss->gauge) + " MiB" : std::string("?"))
       << " |\n";
  }
  if (!any_phase && !any_farm && stalls == 0 &&
      snapshot.find("ascdg_proc_rss_bytes") == nullptr) {
    os << "(no health telemetry recorded)\n";
  }
}

namespace {

/// Sums the batched-kernel farm counters across every `farm="<id>"`
/// series: simulations retired, and the busy-worker nanoseconds that
/// retired them. Both stay zero when no SimFarm ran under this registry.
struct FarmTotals {
  std::uint64_t sims = 0;
  std::uint64_t busy_ns = 0;

  /// Simulations per second of busy worker time — the wall-clock cost
  /// of the simulate_batch hot path, independent of how long the main
  /// thread sat blocked in run_all.
  [[nodiscard]] double sims_per_sec() const noexcept {
    return busy_ns == 0 ? 0.0
                        : static_cast<double>(sims) * 1e9 /
                              static_cast<double>(busy_ns);
  }
};

FarmTotals farm_totals(const obs::MetricsSnapshot& snapshot) {
  FarmTotals totals;
  for (const auto& sample : snapshot.samples) {
    if (sample.name == "ascdg_farm_simulations_total") {
      totals.sims += sample.counter;
    } else if (sample.name == "ascdg_farm_busy_ns_total") {
      totals.busy_ns += sample.counter;
    }
  }
  return totals;
}

}  // namespace

void render_convergence(std::ostream& os, const coverage::CoverageSpace& space,
                        const flow::FlowResult& flow,
                        const obs::MetricsSnapshot* snapshot) {
  os << "## Convergence\n\n"
     << "Best objective value per optimization iteration (paper Fig. 6):\n\n"
     << "```\n";
  render_trace(os, flow.optimization);
  os << "```\n";

  // Histogram quantiles for the cost per unit of convergence: what a
  // simulation chunk latency and an eval batch looked like, not just
  // their totals. Omitted when the series never registered.
  if (snapshot != nullptr) {
    // The throughput headline: how fast the batched simulate_batch
    // kernels actually ran, measured in busy-worker time so the number
    // survives a blocked main thread and compares across worker counts.
    // The process backend cannot observe worker-busy time from the
    // parent (busy_ns stays 0), so the line is omitted rather than
    // reporting a meaningless 0 sims/sec.
    if (const FarmTotals farm = farm_totals(*snapshot);
        farm.sims != 0 && farm.busy_ns != 0) {
      os << "\nSimulation throughput: " << util::format_count(farm.sims)
         << " farm sims at " << util::format_number(farm.sims_per_sec(), 3)
         << " sims/sec of busy worker time.\n";
    }
    const auto quantile_line = [&os, snapshot](const char* name,
                                               const char* caption,
                                               const char* unit) {
      bool first = true;
      for (const auto& sample : snapshot->samples) {
        if (sample.name != name ||
            sample.kind != obs::MetricKind::kHistogram || sample.count == 0) {
          continue;
        }
        if (first) {
          os << "\n" << caption << ":\n\n";
          first = false;
        }
        os << "- ";
        if (!sample.labels.empty()) os << '`' << sample.labels << "` ";
        os << "p50/p95/p99 = "
           << util::format_number(obs::histogram_quantile(sample, 0.50), 4)
           << " / "
           << util::format_number(obs::histogram_quantile(sample, 0.95), 4)
           << " / "
           << util::format_number(obs::histogram_quantile(sample, 0.99), 4)
           << ' ' << unit << " (" << util::format_count(sample.count)
           << " observations)\n";
      }
    };
    quantile_line("ascdg_farm_chunk_latency_us", "Chunk latency quantiles",
                  "us");
    quantile_line("ascdg_eval_batch_size", "Evaluation batch-size quantiles",
                  "points");
  }

  // Evaluation-cache ablation data: how many optimizer evaluations were
  // answered from the seeded cache instead of resimulating.
  if (const std::size_t total = flow.eval_cache_hits + flow.eval_cache_misses;
      total != 0) {
    char rate[32];
    std::snprintf(rate, sizeof rate, "%.1f%%",
                  100.0 * static_cast<double>(flow.eval_cache_hits) /
                      static_cast<double>(total));
    os << "\nEvaluation cache: " << flow.eval_cache_hits << " hits / "
       << flow.eval_cache_misses << " misses (" << rate
       << " hit rate" << (flow.eval_cache_hits == 0 ? "; cache off or cold" : "")
       << ").\n";
  }

  if (flow.first_hits.empty()) return;

  // Coverage progress: how many target events each phase closed.
  static constexpr std::array<const char*, 5> kPhases{
      "before", "sampling", "optimization", "harvest", "never"};
  std::array<std::size_t, 5> newly{};
  for (const auto& hit : flow.first_hits) {
    for (std::size_t p = 0; p < kPhases.size(); ++p) {
      if (hit.phase == kPhases[p]) {
        ++newly[p];
        break;
      }
    }
  }
  os << "\nCoverage progress (" << flow.first_hits.size()
     << " target events):\n\n"
     << "| phase | newly hit | cumulative |\n| --- | ---: | ---: |\n";
  std::size_t cumulative = 0;
  for (std::size_t p = 0; p + 1 < kPhases.size(); ++p) {
    cumulative += newly[p];
    os << "| " << kPhases[p] << " | " << newly[p] << " | " << cumulative
       << " |\n";
  }
  if (newly.back() != 0) {
    os << "| never | " << newly.back() << " | — |\n";
  }

  if (flow.first_hits.size() <= 24) {
    os << "\n| target event | first hit |\n| --- | --- |\n";
    for (const auto& hit : flow.first_hits) {
      os << "| `" << space.name(hit.event) << "` | " << hit.phase << " |\n";
    }
  }
}

void write_metrics_json(const std::filesystem::path& path,
                        const coverage::CoverageSpace& space,
                        const flow::FlowResult& flow,
                        const obs::MetricsSnapshot& snapshot) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) {
      throw util::Error("cannot create directory '" +
                        path.parent_path().string() + "': " + ec.message());
    }
  }
  std::ofstream os(path, std::ios::trunc);
  if (!os) {
    throw util::Error("cannot open '" + path.string() + "' for writing");
  }

  const auto series_json = [](const opt::OptResult& result) {
    std::string out = "[";
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
      const auto& r = result.trace[i];
      if (i != 0) out += ',';
      out += util::JsonObject{}
                 .add("iter", r.iteration)
                 .add("objective", r.center_value)
                 .add("best", r.best_value)
                 .add("step", r.step)
                 .add("evals", r.evaluations)
                 .add("moved", r.moved)
                 .add("resamples", r.resamples)
                 .add("halved", r.halved)
                 .str();
    }
    out += ']';
    return out;
  };

  std::string first_hits = "[";
  for (std::size_t i = 0; i < flow.first_hits.size(); ++i) {
    const auto& hit = flow.first_hits[i];
    if (i != 0) first_hits += ',';
    first_hits += util::JsonObject{}
                      .add("event", space.name(hit.event))
                      .add("event_id", hit.event.value)
                      .add("phase", hit.phase)
                      .str();
  }
  first_hits += ']';

  std::ostringstream registry;
  obs::write_json(registry, snapshot);
  std::string registry_json = registry.str();
  while (!registry_json.empty() && registry_json.back() == '\n') {
    registry_json.pop_back();
  }

  // Digest of the registry's health series (the full series are also in
  // "registry"; this block saves consumers the label-parsing).
  const auto health_gauge = [&](std::string_view name) -> std::int64_t {
    const obs::MetricSample* sample = snapshot.find(name);
    return sample != nullptr ? sample->gauge : 0;
  };
  std::uint64_t watchdog_stalls = 0;
  for (const auto& sample : snapshot.samples) {
    if (sample.name == "ascdg_watchdog_stalls_total") {
      watchdog_stalls += sample.counter;
    }
  }
  util::JsonObject run_health;
  run_health.add("rss_bytes", health_gauge("ascdg_proc_rss_bytes"))
      .add("max_rss_bytes", health_gauge("ascdg_proc_max_rss_bytes"))
      .add("cpu_user_ms", health_gauge("ascdg_proc_cpu_user_ms"))
      .add("cpu_system_ms", health_gauge("ascdg_proc_cpu_system_ms"))
      .add("major_faults", health_gauge("ascdg_proc_major_faults"))
      .add("watchdog_stalls", watchdog_stalls);

  // The throughput headline rides along pre-digested so that
  // `ascdg inspect --compare` (and any trend dashboard) can show the
  // batched-kernel speedup without re-summing the registry series.
  const FarmTotals farm = farm_totals(snapshot);

  util::JsonObject document;
  document.add("schema", "ascdg-run-metrics-v1")
      .add("seed_template", flow.seed_template)
      .add("flow_sims", flow.flow_sims())
      .add("farm_sims", farm.sims)
      .add("sims_per_sec", farm.sims_per_sec())
      .add("eval_cache_hits", flow.eval_cache_hits)
      .add("eval_cache_misses", flow.eval_cache_misses)
      .add_raw("run_health", run_health.str())
      .add_raw("opt_series", series_json(flow.optimization));
  if (flow.refinement.has_value()) {
    document.add_raw("refine_series", series_json(*flow.refinement));
  }
  document.add_raw("first_hits", first_hits)
      .add_raw("registry", registry_json);
  os << document.str() << '\n';
  os.flush();
  if (!os) {
    throw util::Error("failed writing '" + path.string() + "'");
  }
}

std::string phase_caption(const flow::FlowResult& flow) {
  std::string caption;
  caption += "Before CDG (" + util::format_count(flow.before.sims) + " sims); ";
  caption += "Sampling (" + std::to_string(flow.sampling.samples.size()) +
             " tests x " +
             std::to_string(flow.sampling.samples.empty()
                                ? 0
                                : flow.sampling.samples.front().stats.sims()) +
             " sims each); ";
  caption += "Optimization (" + std::to_string(flow.optimization.trace.size()) +
             " iterations, " + util::format_count(flow.optimization_phase.sims) +
             " sims); ";
  caption += "Best test (" + util::format_count(flow.harvest_phase.sims) +
             " sims)";
  return caption;
}

}  // namespace ascdg::report
