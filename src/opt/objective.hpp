// The optimization-facing view of the CDG problem (paper §IV-E).
//
// The mapping from template settings to coverage is unknown and can only
// be *sampled*, at the cost of N simulations per sample, with dynamic
// noise from the random stimuli generation. Objective models exactly
// that: a noisy oracle. Optimizers in this module MAXIMIZE the
// objective (the paper maximizes the approximated-target hit rate).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ascdg::opt {

/// A point in the optimizer's box, one coordinate per dimension.
using Point = std::vector<double>;

class Objective {
 public:
  virtual ~Objective() = default;

  /// Dimension of the search space (points live in [lower, upper]^dim,
  /// bounds are the optimizer's, typically [0,1]).
  [[nodiscard]] virtual std::size_t dimension() const noexcept = 0;

  /// One noisy sample of the objective at `x`. `eval_seed` determines
  /// the noise realization: the same (x, eval_seed) must return the
  /// same value (this keeps whole optimization runs reproducible).
  [[nodiscard]] virtual double evaluate(std::span<const double> x,
                                        std::uint64_t eval_seed) = 0;

  /// Batched evaluation: one noisy sample per (xs[i], seeds[i]), values
  /// returned in point order. Optimizers dispatch whole stencils /
  /// populations through this so objectives backed by a simulation farm
  /// can keep every worker busy across the batch. The contract matches
  /// evaluate() point-wise: evaluate_batch(xs, seeds)[i] must equal
  /// evaluate(xs[i], seeds[i]) called in the same objective state, and
  /// side effects (evaluation counters, best tracking) must accumulate
  /// in point order — so a native override is observationally identical
  /// to this default scalar loop. Requires xs.size() == seeds.size().
  [[nodiscard]] virtual std::vector<double> evaluate_batch(
      std::span<const Point> xs, std::span<const std::uint64_t> seeds) {
    std::vector<double> values;
    values.reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      values.push_back(evaluate(xs[i], seeds[i]));
    }
    return values;
  }
};

/// Why an optimizer stopped.
enum class StopReason {
  kMaxIterations,
  kMinStep,
  kTargetReached,
  kMaxEvaluations,
};

[[nodiscard]] constexpr const char* to_string(StopReason reason) noexcept {
  switch (reason) {
    case StopReason::kMaxIterations:
      return "max-iterations";
    case StopReason::kMinStep:
      return "min-step";
    case StopReason::kTargetReached:
      return "target-reached";
    case StopReason::kMaxEvaluations:
      return "max-evaluations";
  }
  return "?";
}

/// One optimizer iteration, for progress plots (paper Fig. 6 shows
/// "maximal value of the target function per optimization iteration")
/// and convergence telemetry (objective value, stencil size, resample
/// and step-halving dynamics per iteration).
struct IterationRecord {
  std::size_t iteration = 0;
  double center_value = 0.0;  ///< objective at the iteration's center
  double best_value = 0.0;    ///< max objective seen this iteration
  double step = 0.0;          ///< stencil size h during the iteration
  std::size_t evaluations = 0;  ///< cumulative objective evaluations
  bool moved = false;           ///< did the center move this iteration
  std::size_t resamples = 0;    ///< center re-samples this iteration (0/1)
  bool halved = false;          ///< was h halved after this iteration
};

struct OptResult {
  std::vector<double> best_point;
  double best_value = 0.0;
  std::vector<IterationRecord> trace;
  std::size_t evaluations = 0;
  StopReason reason = StopReason::kMaxIterations;
};

}  // namespace ascdg::opt
