// Implicit filtering (paper Algorithm 1, after Kelley [6] and Gal et
// al. [5]): a derivative-free stencil search for noisy objectives.
//
// At each iteration the algorithm samples the objective at n points a
// distance h from the current center along random directions; it moves
// the center to the best improving point, or halves h when the center
// is already the best ("to reduce the possibility of overshooting the
// maximum"). Two modifications handle the dynamic simulation noise
// (paper §IV-E): the objective itself averages N samples per point, and
// the center is re-sampled every iteration "to reduce the effect of
// extremely high noise".
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "opt/objective.hpp"

namespace ascdg::opt {

/// Complete mid-run state of an implicit-filtering search, captured
/// after every iteration. A run restarted from a checkpoint (via
/// ImplicitFilteringOptions::resume) continues *bit-identically* to the
/// uninterrupted run: the direction generator's raw state and the
/// eval-seed counter are part of the checkpoint, so the resumed
/// trajectory replays the exact same stencils and noise realizations.
struct IfCheckpoint {
  std::size_t next_iteration = 0;  ///< first iteration still to run
  std::vector<double> center;
  double center_value = 0.0;
  double step = 0.0;               ///< h going into next_iteration
  std::size_t stale_rounds = 0;    ///< improvement-free streak
  std::size_t evaluations = 0;
  std::vector<double> best_point;
  double best_value = 0.0;
  std::vector<IterationRecord> trace;  ///< completed iterations
  std::array<std::uint64_t, 4> rng_state{};  ///< direction generator
  std::uint64_t eval_seed_counter = 0;       ///< seeds drawn so far
};

enum class DirectionMode {
  kRandomSphere,  ///< uniformly random unit directions: each coordinate
                  ///< moves ~h/sqrt(dim) — precise but slow in high dim
  kCoordinate,    ///< +-e_i stencil, cycled (classic implicit filtering)
  kRademacher,    ///< random +-1 per coordinate (SPSA-style): every
                  ///< coordinate moves a full +-h per stencil point,
                  ///< much faster in high-dimensional template spaces
  kSparse,        ///< random +-1 on a random ~quarter of the coordinates:
                  ///< targeted moves that can fix one bad setting without
                  ///< disturbing the rest; good when coordinates are
                  ///< weakly coupled and noise is high
};

struct ImplicitFilteringOptions {
  std::size_t directions = 8;   ///< n — stencil points per iteration
  double initial_step = 0.25;   ///< h — initial stencil size
  double min_step = 1e-3;       ///< stop when h falls below this
  std::size_t max_iterations = 50;
  std::size_t max_evaluations = std::numeric_limits<std::size_t>::max();
  std::optional<double> target_value;  ///< stop once center reaches this
  bool resample_center = true;  ///< re-sample the center every iteration
  /// Consecutive improvement-free iterations required before h is
  /// halved. 1 is the textbook algorithm; larger values make the search
  /// robust to unlucky noisy rounds at a useful step size.
  std::size_t halve_patience = 1;
  DirectionMode direction_mode = DirectionMode::kRandomSphere;
  double lower = 0.0;  ///< box lower bound (every coordinate)
  double upper = 1.0;  ///< box upper bound
  std::uint64_t seed = 1;

  /// Optional convergence telemetry sink (not owned; must outlive the
  /// run). When set, every iteration emits one "opt_iter" event —
  /// objective value at the center (the paper's T_N), best stencil
  /// value, stencil size h, cumulative evaluations, and the iteration's
  /// resample / move / halving outcome — parented under the caller's
  /// current span. `trace_label` distinguishes concurrent runs.
  obs::Tracer* trace = nullptr;
  std::string trace_label = "opt";

  /// Durable-session hook: called after every completed iteration with
  /// the full resumable state. Checkpoint cost is the caller's (the
  /// session layer writes it to disk); evaluation dispatch never waits
  /// on it. Exceptions propagate and abort the run.
  std::function<void(const IfCheckpoint&)> on_checkpoint;

  /// Warm start from a previous run's checkpoint (not owned; read once
  /// at entry). `x0` is ignored apart from its dimension check, and the
  /// resumed run reproduces the uninterrupted run exactly — including
  /// re-applying the stop conditions the checkpointed iteration may
  /// already have triggered.
  const IfCheckpoint* resume = nullptr;
};

/// Runs implicit filtering from `x0` (clamped into the box).
/// Throws util::ConfigError for malformed options (directions == 0,
/// non-positive step, lower >= upper, or x0 dimension mismatch).
[[nodiscard]] OptResult implicit_filtering(Objective& objective,
                                           std::span<const double> x0,
                                           const ImplicitFilteringOptions& options);

}  // namespace ascdg::opt
