// Implicit filtering (paper Algorithm 1, after Kelley [6] and Gal et
// al. [5]): a derivative-free stencil search for noisy objectives.
//
// At each iteration the algorithm samples the objective at n points a
// distance h from the current center along random directions; it moves
// the center to the best improving point, or halves h when the center
// is already the best ("to reduce the possibility of overshooting the
// maximum"). Two modifications handle the dynamic simulation noise
// (paper §IV-E): the objective itself averages N samples per point, and
// the center is re-sampled every iteration "to reduce the effect of
// extremely high noise".
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>

#include "obs/trace.hpp"
#include "opt/objective.hpp"

namespace ascdg::opt {

enum class DirectionMode {
  kRandomSphere,  ///< uniformly random unit directions: each coordinate
                  ///< moves ~h/sqrt(dim) — precise but slow in high dim
  kCoordinate,    ///< +-e_i stencil, cycled (classic implicit filtering)
  kRademacher,    ///< random +-1 per coordinate (SPSA-style): every
                  ///< coordinate moves a full +-h per stencil point,
                  ///< much faster in high-dimensional template spaces
  kSparse,        ///< random +-1 on a random ~quarter of the coordinates:
                  ///< targeted moves that can fix one bad setting without
                  ///< disturbing the rest; good when coordinates are
                  ///< weakly coupled and noise is high
};

struct ImplicitFilteringOptions {
  std::size_t directions = 8;   ///< n — stencil points per iteration
  double initial_step = 0.25;   ///< h — initial stencil size
  double min_step = 1e-3;       ///< stop when h falls below this
  std::size_t max_iterations = 50;
  std::size_t max_evaluations = std::numeric_limits<std::size_t>::max();
  std::optional<double> target_value;  ///< stop once center reaches this
  bool resample_center = true;  ///< re-sample the center every iteration
  /// Consecutive improvement-free iterations required before h is
  /// halved. 1 is the textbook algorithm; larger values make the search
  /// robust to unlucky noisy rounds at a useful step size.
  std::size_t halve_patience = 1;
  DirectionMode direction_mode = DirectionMode::kRandomSphere;
  double lower = 0.0;  ///< box lower bound (every coordinate)
  double upper = 1.0;  ///< box upper bound
  std::uint64_t seed = 1;

  /// Optional convergence telemetry sink (not owned; must outlive the
  /// run). When set, every iteration emits one "opt_iter" event —
  /// objective value at the center (the paper's T_N), best stencil
  /// value, stencil size h, cumulative evaluations, and the iteration's
  /// resample / move / halving outcome — parented under the caller's
  /// current span. `trace_label` distinguishes concurrent runs.
  obs::Tracer* trace = nullptr;
  std::string trace_label = "opt";
};

/// Runs implicit filtering from `x0` (clamped into the box).
/// Throws util::ConfigError for malformed options (directions == 0,
/// non-positive step, lower >= upper, or x0 dimension mismatch).
[[nodiscard]] OptResult implicit_filtering(Objective& objective,
                                           std::span<const double> x0,
                                           const ImplicitFilteringOptions& options);

}  // namespace ascdg::opt
