#include "opt/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ascdg::opt {

namespace {

std::vector<double> clamped(std::span<const double> x, double lo, double hi) {
  std::vector<double> out(x.begin(), x.end());
  for (double& v : out) v = std::clamp(v, lo, hi);
  return out;
}

/// Batched dispatch shared by the baselines: draws one eval seed per
/// point in point order (so trajectories are bit-identical to the
/// scalar loop) and accounts the evaluations in `result`. Callers
/// truncate the batch to the remaining budget *before* dispatch.
std::vector<double> sample_batch(Objective& objective, OptResult& result,
                                 util::SeedStream& eval_seeds,
                                 std::span<const Point> points) {
  std::vector<std::uint64_t> seeds(points.size());
  for (auto& seed : seeds) seed = eval_seeds.next();
  auto values = objective.evaluate_batch(points, seeds);
  result.evaluations += points.size();
  return values;
}

}  // namespace

OptResult random_search(Objective& objective,
                        const RandomSearchOptions& options) {
  if (options.samples == 0) {
    throw util::ConfigError("random search needs at least one sample");
  }
  if (!(options.lower < options.upper)) {
    throw util::ConfigError("random search box is empty");
  }
  const std::size_t dim = objective.dimension();
  util::Xoshiro256 rng(options.seed);
  util::SeedStream eval_seeds(options.seed ^ 0x5EEDFACEULL);

  OptResult result;
  result.best_value = -std::numeric_limits<double>::infinity();

  // Thin wrapper over one batch call: draw every point up front, then
  // dispatch the whole sample set through evaluate_batch at once.
  std::vector<Point> points(options.samples);
  for (auto& x : points) {
    x.resize(dim);
    for (double& v : x) v = rng.uniform(options.lower, options.upper);
  }
  const std::vector<double> values =
      sample_batch(objective, result, eval_seeds, points);
  for (std::size_t s = 0; s < options.samples; ++s) {
    const double value = values[s];
    if (value > result.best_value) {
      result.best_value = value;
      result.best_point = points[s];
    }
    result.trace.push_back(
        {s, value, result.best_value, 0.0, s + 1, value == result.best_value});
  }
  result.reason = StopReason::kMaxEvaluations;
  return result;
}

OptResult coordinate_search(Objective& objective, std::span<const double> x0,
                            const CoordinateSearchOptions& options) {
  const std::size_t dim = objective.dimension();
  if (x0.size() != dim) {
    throw util::ConfigError("coordinate search x0 dimension mismatch");
  }
  if (!(options.initial_step > 0.0) || !(options.min_step > 0.0)) {
    throw util::ConfigError("coordinate search steps must be positive");
  }
  util::SeedStream eval_seeds(options.seed ^ 0xC0095EEDULL);

  OptResult result;
  std::vector<double> center = clamped(x0, options.lower, options.upper);
  double h = options.initial_step;

  result.best_point = center;
  result.reason = StopReason::kMaxIterations;
  if (options.max_evaluations == 0) {
    result.reason = StopReason::kMaxEvaluations;
    return result;
  }
  double center_value =
      sample_batch(objective, result, eval_seeds, {&center, 1}).front();
  result.best_value = center_value;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // The whole +-h*e_i stencil as one batch, truncated to the budget.
    std::vector<Point> batch;
    batch.reserve(2 * dim);
    for (std::size_t axis = 0; axis < dim && batch.size() <
         options.max_evaluations - result.evaluations; ++axis) {
      for (const double sign : {1.0, -1.0}) {
        if (batch.size() >= options.max_evaluations - result.evaluations) break;
        Point candidate = center;
        candidate[axis] =
            std::clamp(candidate[axis] + sign * h, options.lower, options.upper);
        batch.push_back(std::move(candidate));
      }
    }
    const std::vector<double> values =
        sample_batch(objective, result, eval_seeds, batch);

    double best = center_value;
    std::vector<double> next_center = center;
    bool moved = false;
    for (std::size_t k = 0; k < values.size(); ++k) {
      if (values[k] > best) {
        best = values[k];
        next_center = batch[k];
        moved = true;
      }
    }
    result.trace.push_back({iter, center_value, best, h, result.evaluations, moved});
    if (best > result.best_value) {
      result.best_value = best;
      result.best_point = next_center;
    }
    if (moved) {
      center = std::move(next_center);
      center_value = best;
    } else {
      h /= 2.0;
    }
    if (h < options.min_step) {
      result.reason = StopReason::kMinStep;
      break;
    }
    if (result.evaluations >= options.max_evaluations) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }
  }
  return result;
}

OptResult nelder_mead(Objective& objective, std::span<const double> x0,
                      const NelderMeadOptions& options) {
  const std::size_t dim = objective.dimension();
  if (x0.size() != dim) {
    throw util::ConfigError("nelder-mead x0 dimension mismatch");
  }
  if (!(options.initial_scale > 0.0)) {
    throw util::ConfigError("nelder-mead initial scale must be positive");
  }
  util::SeedStream eval_seeds(options.seed ^ 0x7E15EEDULL);

  OptResult result;
  const auto remaining = [&]() {
    return options.max_evaluations - result.evaluations;
  };
  const auto sample = [&](std::span<const double> x) {
    const Point point(x.begin(), x.end());
    return sample_batch(objective, result, eval_seeds, {&point, 1}).front();
  };
  const auto clamp_point = [&](std::vector<double>& x) {
    for (double& v : x) v = std::clamp(v, options.lower, options.upper);
  };

  // Initial simplex: x0 plus one offset vertex per axis, evaluated as
  // one batch (truncated to the budget — a budget smaller than the
  // simplex returns the best of the evaluated vertices).
  std::vector<std::vector<double>> simplex;
  std::vector<double> values;
  simplex.reserve(dim + 1);
  simplex.push_back(clamped(x0, options.lower, options.upper));
  for (std::size_t axis = 0; axis < dim; ++axis) {
    auto vertex = simplex.front();
    vertex[axis] += options.initial_scale;
    clamp_point(vertex);
    simplex.push_back(std::move(vertex));
  }
  if (remaining() < simplex.size()) {
    const std::span<const Point> head(simplex.data(), remaining());
    const std::vector<double> head_values =
        sample_batch(objective, result, eval_seeds, head);
    result.best_value = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < head_values.size(); ++i) {
      if (head_values[i] > result.best_value) {
        result.best_value = head_values[i];
        result.best_point = simplex[i];
      }
    }
    if (result.best_point.empty()) result.best_point = simplex.front();
    result.reason = StopReason::kMaxEvaluations;
    return result;
  }
  values = sample_batch(objective, result, eval_seeds, simplex);

  constexpr double kAlpha = 1.0;  // reflection
  constexpr double kGamma = 2.0;  // expansion
  constexpr double kRho = 0.5;    // contraction
  constexpr double kSigma = 0.5;  // shrink

  result.reason = StopReason::kMaxIterations;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Order vertices: best (max) first for a maximizer.
    std::vector<std::size_t> order(simplex.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&values](std::size_t a, std::size_t b) {
      return values[a] > values[b];
    });
    const std::size_t best_i = order.front();
    const std::size_t worst_i = order.back();
    const std::size_t second_worst_i = order[order.size() - 2];

    result.trace.push_back({iter, values[best_i], values[best_i], 0.0,
                            result.evaluations, true});
    if (values[best_i] > result.best_value || result.trace.size() == 1) {
      result.best_value = values[best_i];
      result.best_point = simplex[best_i];
    }

    const double spread = values[best_i] - values[worst_i];
    if (std::fabs(spread) < options.tolerance) {
      result.reason = StopReason::kMinStep;
      break;
    }
    if (result.evaluations >= options.max_evaluations) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(dim, 0.0);
    for (const std::size_t i : order) {
      if (i == worst_i) continue;
      for (std::size_t d = 0; d < dim; ++d) centroid[d] += simplex[i][d];
    }
    for (double& v : centroid) v /= static_cast<double>(dim);

    const auto affine = [&](double t) {
      std::vector<double> x(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        x[d] = centroid[d] + t * (centroid[d] - simplex[worst_i][d]);
      }
      clamp_point(x);
      return x;
    };

    auto reflected = affine(kAlpha);
    const double reflected_value = sample(reflected);
    if (reflected_value > values[second_worst_i] &&
        reflected_value <= values[best_i]) {
      simplex[worst_i] = std::move(reflected);
      values[worst_i] = reflected_value;
      continue;
    }
    if (reflected_value > values[best_i]) {
      if (remaining() == 0) {
        simplex[worst_i] = std::move(reflected);
        values[worst_i] = reflected_value;
        result.reason = StopReason::kMaxEvaluations;
        break;
      }
      auto expanded = affine(kGamma);
      const double expanded_value = sample(expanded);
      if (expanded_value > reflected_value) {
        simplex[worst_i] = std::move(expanded);
        values[worst_i] = expanded_value;
      } else {
        simplex[worst_i] = std::move(reflected);
        values[worst_i] = reflected_value;
      }
      continue;
    }
    if (remaining() == 0) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }
    auto contracted = affine(-kRho);
    const double contracted_value = sample(contracted);
    if (contracted_value > values[worst_i]) {
      simplex[worst_i] = std::move(contracted);
      values[worst_i] = contracted_value;
      continue;
    }
    // Shrink toward the best vertex, re-evaluating the moved vertices
    // as one batch (truncated to the budget; a truncated shrink stops
    // the run with the vertices evaluated so far).
    std::vector<std::size_t> shrunk;
    shrunk.reserve(order.size() - 1);
    std::vector<Point> shrink_batch;
    shrink_batch.reserve(order.size() - 1);
    for (const std::size_t i : order) {
      if (i == best_i) continue;
      for (std::size_t d = 0; d < dim; ++d) {
        simplex[i][d] =
            simplex[best_i][d] + kSigma * (simplex[i][d] - simplex[best_i][d]);
      }
      if (shrink_batch.size() < remaining()) {
        shrunk.push_back(i);
        shrink_batch.push_back(simplex[i]);
      }
    }
    const std::vector<double> shrink_values =
        sample_batch(objective, result, eval_seeds, shrink_batch);
    for (std::size_t k = 0; k < shrunk.size(); ++k) {
      values[shrunk[k]] = shrink_values[k];
    }
    if (shrunk.size() + 1 < order.size()) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }
  }

  // Final bookkeeping in case the loop exited before trace update.
  for (std::size_t i = 0; i < simplex.size(); ++i) {
    if (values[i] > result.best_value) {
      result.best_value = values[i];
      result.best_point = simplex[i];
    }
  }
  return result;
}

OptResult cross_entropy(Objective& objective, std::span<const double> x0,
                        const CrossEntropyOptions& options) {
  const std::size_t dim = objective.dimension();
  if (x0.size() != dim) {
    throw util::ConfigError("cross-entropy x0 dimension mismatch");
  }
  if (options.population == 0 || options.elite == 0 ||
      options.elite > options.population) {
    throw util::ConfigError(
        "cross-entropy needs 0 < elite <= population samples");
  }
  if (!(options.initial_stddev > 0.0)) {
    throw util::ConfigError("cross-entropy initial stddev must be positive");
  }
  util::Xoshiro256 rng(options.seed);
  util::SeedStream eval_seeds(options.seed ^ 0xCE5EEDULL);

  OptResult result;
  std::vector<double> mean = clamped(x0, options.lower, options.upper);
  std::vector<double> stddev(dim, options.initial_stddev);
  result.best_value = -std::numeric_limits<double>::infinity();
  result.reason = StopReason::kMaxIterations;

  struct Individual {
    std::vector<double> x;
    double value = 0.0;
  };
  std::vector<Individual> population(options.population);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Generate the generation (truncated to the budget), then evaluate
    // the whole population in one batch.
    const std::size_t generated =
        std::min(options.population,
                 options.max_evaluations - result.evaluations);
    std::vector<Point> batch(generated);
    for (auto& x : batch) {
      x.resize(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        x[d] = std::clamp(mean[d] + stddev[d] * rng.normal(),
                          options.lower, options.upper);
      }
    }
    const std::vector<double> values =
        sample_batch(objective, result, eval_seeds, batch);
    for (std::size_t i = 0; i < generated; ++i) {
      population[i].x = std::move(batch[i]);
      population[i].value = values[i];
      if (values[i] > result.best_value) {
        result.best_value = values[i];
        result.best_point = population[i].x;
      }
    }
    if (generated < options.population ||
        result.evaluations >= options.max_evaluations) {
      // An incomplete generation must not refit the distribution.
      result.reason = StopReason::kMaxEvaluations;
      break;
    }
    std::partial_sort(population.begin(),
                      population.begin() + static_cast<std::ptrdiff_t>(
                                               options.elite),
                      population.end(),
                      [](const Individual& a, const Individual& b) {
                        return a.value > b.value;
                      });
    // Refit mean/stddev to the elite, with smoothing.
    for (std::size_t d = 0; d < dim; ++d) {
      double m = 0.0;
      for (std::size_t e = 0; e < options.elite; ++e) {
        m += population[e].x[d];
      }
      m /= static_cast<double>(options.elite);
      double var = 0.0;
      for (std::size_t e = 0; e < options.elite; ++e) {
        const double diff = population[e].x[d] - m;
        var += diff * diff;
      }
      var /= static_cast<double>(options.elite);
      mean[d] = options.smoothing * m + (1.0 - options.smoothing) * mean[d];
      stddev[d] = options.smoothing * std::sqrt(var) +
                  (1.0 - options.smoothing) * stddev[d];
    }
    result.trace.push_back({iter, population[0].value, result.best_value,
                            stddev[0], result.evaluations, true});

    bool converged = true;
    for (const double sd : stddev) {
      if (sd >= options.min_stddev) converged = false;
    }
    if (converged) {
      result.reason = StopReason::kMinStep;
      break;
    }
    if (result.evaluations >= options.max_evaluations) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }
  }
  return result;
}

OptResult simulated_annealing(Objective& objective, std::span<const double> x0,
                              const SimulatedAnnealingOptions& options) {
  const std::size_t dim = objective.dimension();
  if (x0.size() != dim) {
    throw util::ConfigError("simulated annealing x0 dimension mismatch");
  }
  if (!(options.initial_temperature > 0.0) ||
      !(options.cooling > 0.0 && options.cooling < 1.0) ||
      !(options.step > 0.0)) {
    throw util::ConfigError("simulated annealing options out of range");
  }
  util::Xoshiro256 rng(options.seed);
  util::SeedStream eval_seeds(options.seed ^ 0x5A5EEDULL);

  OptResult result;
  const auto sample = [&](std::span<const double> x) {
    const double v = objective.evaluate(x, eval_seeds.next());
    ++result.evaluations;
    return v;
  };

  std::vector<double> current = clamped(x0, options.lower, options.upper);
  result.best_point = current;
  if (options.max_evaluations == 0) {
    result.reason = StopReason::kMaxEvaluations;
    return result;
  }
  double current_value = sample(current);
  result.best_value = current_value;
  double temperature = options.initial_temperature;

  std::size_t iter = 0;
  while (result.evaluations < options.max_evaluations) {
    std::vector<double> candidate(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      candidate[d] = std::clamp(current[d] + options.step * rng.normal(),
                                options.lower, options.upper);
    }
    const double value = sample(candidate);
    const double delta = value - current_value;
    const bool accept =
        delta >= 0.0 || rng.uniform() < std::exp(delta / temperature);
    if (accept) {
      current = std::move(candidate);
      current_value = value;
    }
    if (value > result.best_value) {
      result.best_value = value;
      result.best_point = current;
    }
    result.trace.push_back(
        {iter++, current_value, result.best_value, temperature,
         result.evaluations, accept});
    temperature *= options.cooling;
  }
  result.reason = StopReason::kMaxEvaluations;
  return result;
}

}  // namespace ascdg::opt
