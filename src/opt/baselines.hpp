// Baseline derivative-free optimizers used to benchmark implicit
// filtering on the CDG objective (the comparison the optimization paper
// [5] motivates): pure random search, compass/coordinate search, and
// Nelder–Mead. All maximize, all operate on the same noisy Objective,
// and all respect a box constraint by clamping.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

#include "opt/objective.hpp"

namespace ascdg::opt {

struct RandomSearchOptions {
  std::size_t samples = 100;
  double lower = 0.0;
  double upper = 1.0;
  std::uint64_t seed = 1;
};

/// Evaluates `samples` uniformly random points and returns the best.
[[nodiscard]] OptResult random_search(Objective& objective,
                                      const RandomSearchOptions& options);

struct CoordinateSearchOptions {
  double initial_step = 0.25;
  double min_step = 1e-3;
  std::size_t max_iterations = 50;
  std::size_t max_evaluations = std::numeric_limits<std::size_t>::max();
  double lower = 0.0;
  double upper = 1.0;
  std::uint64_t seed = 1;
};

/// Compass search: evaluates the +-h*e_i stencil (2*dim points), moves
/// to the best improving point or halves the step.
[[nodiscard]] OptResult coordinate_search(Objective& objective,
                                          std::span<const double> x0,
                                          const CoordinateSearchOptions& options);

struct NelderMeadOptions {
  double initial_scale = 0.2;  ///< initial simplex edge length
  std::size_t max_iterations = 200;
  std::size_t max_evaluations = std::numeric_limits<std::size_t>::max();
  double tolerance = 1e-4;  ///< stop when simplex value spread is below
  double lower = 0.0;
  double upper = 1.0;
  std::uint64_t seed = 1;
};

/// Standard Nelder–Mead simplex (reflection / expansion / contraction /
/// shrink), maximizing, with box clamping.
[[nodiscard]] OptResult nelder_mead(Objective& objective,
                                    std::span<const double> x0,
                                    const NelderMeadOptions& options);

struct CrossEntropyOptions {
  std::size_t population = 30;      ///< samples per generation
  std::size_t elite = 6;            ///< best samples refitting the distribution
  double initial_stddev = 0.3;      ///< per-coordinate sigma of generation 0
  double min_stddev = 1e-3;         ///< stop when all sigmas fall below
  double smoothing = 0.7;           ///< new = s*fit + (1-s)*old
  std::size_t max_iterations = 50;
  std::size_t max_evaluations = std::numeric_limits<std::size_t>::max();
  double lower = 0.0;
  double upper = 1.0;
  std::uint64_t seed = 1;
};

/// Cross-entropy method: samples a diagonal Gaussian, refits it to the
/// elite fraction each generation. A population-based contrast to the
/// stencil-based implicit filtering; the distribution shrinking makes it
/// naturally noise-tolerant.
[[nodiscard]] OptResult cross_entropy(Objective& objective,
                                      std::span<const double> x0,
                                      const CrossEntropyOptions& options);

struct SimulatedAnnealingOptions {
  double initial_temperature = 0.2;  ///< in objective-value units
  double cooling = 0.97;             ///< temperature *= cooling per step
  double step = 0.15;                ///< proposal stddev per coordinate
  std::size_t max_evaluations = 500;
  double lower = 0.0;
  double upper = 1.0;
  std::uint64_t seed = 1;
};

/// Metropolis-style simulated annealing with Gaussian proposals and a
/// geometric cooling schedule, maximizing.
[[nodiscard]] OptResult simulated_annealing(
    Objective& objective, std::span<const double> x0,
    const SimulatedAnnealingOptions& options);

}  // namespace ascdg::opt
