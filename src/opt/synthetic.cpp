#include "opt/synthetic.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ascdg::opt {

namespace {

double squared_distance(std::span<const double> x,
                        std::span<const double> y) noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    total += d * d;
  }
  return total;
}

/// Mixes the point into the seed so the same (x, seed) pair always sees
/// the same noise, but different points see independent noise.
std::uint64_t point_seed(std::span<const double> x, std::uint64_t seed) {
  std::uint64_t state = seed;
  for (const double v : x) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    state ^= bits;
    (void)util::splitmix64_next(state);
  }
  return state;
}

}  // namespace

double NoisyQuadratic::true_value(std::span<const double> x) const noexcept {
  return 1.0 - squared_distance(x, optimum_);
}

double NoisyQuadratic::evaluate(std::span<const double> x,
                                std::uint64_t eval_seed) {
  ASCDG_ASSERT(x.size() == optimum_.size(), "dimension mismatch");
  util::Xoshiro256 rng(point_seed(x, eval_seed));
  return true_value(x) + sigma_ * rng.normal();
}

double BernoulliHill::hit_probability(std::span<const double> x) const noexcept {
  return peak_ * std::exp(-sharpness_ * squared_distance(x, optimum_));
}

double BernoulliHill::evaluate(std::span<const double> x,
                               std::uint64_t eval_seed) {
  ASCDG_ASSERT(x.size() == optimum_.size(), "dimension mismatch");
  util::Xoshiro256 rng(point_seed(x, eval_seed));
  const double p = hit_probability(x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples_; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  draws_ += samples_;
  return static_cast<double>(hits) / static_cast<double>(samples_);
}

double FlatSpike::hit_probability(std::span<const double> x) const noexcept {
  const double dist2 = squared_distance(x, optimum_);
  return dist2 <= radius_ * radius_ ? 0.8 : 0.0;
}

double FlatSpike::evaluate(std::span<const double> x, std::uint64_t eval_seed) {
  ASCDG_ASSERT(x.size() == optimum_.size(), "dimension mismatch");
  util::Xoshiro256 rng(point_seed(x, eval_seed));
  const double p = hit_probability(x);
  if (p == 0.0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < samples_; ++i) {
    if (rng.bernoulli(p)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples_);
}

TwoPeaks::TwoPeaks(std::vector<double> global_opt, std::vector<double> local_opt,
                   double local_height, double sigma)
    : global_(std::move(global_opt)),
      local_(std::move(local_opt)),
      local_height_(local_height),
      sigma_(sigma) {
  ASCDG_ASSERT(global_.size() == local_.size(), "peak dimension mismatch");
  ASCDG_ASSERT(local_height_ < 1.0, "local peak must be lower than global");
}

double TwoPeaks::true_value(std::span<const double> x) const noexcept {
  const double g = std::exp(-8.0 * squared_distance(x, global_));
  const double l = local_height_ * std::exp(-8.0 * squared_distance(x, local_));
  return g > l ? g : l;
}

double TwoPeaks::evaluate(std::span<const double> x, std::uint64_t eval_seed) {
  ASCDG_ASSERT(x.size() == global_.size(), "dimension mismatch");
  util::Xoshiro256 rng(point_seed(x, eval_seed));
  return true_value(x) + sigma_ * rng.normal();
}

}  // namespace ascdg::opt
