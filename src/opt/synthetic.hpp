// Synthetic noisy objectives with known optima, used by the optimizer
// unit/property tests and the hyperparameter ablation benches. They
// mirror the noise structure of the real CDG objective: an underlying
// smooth hit-probability surface observed only through the empirical
// mean of N Bernoulli samples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "opt/objective.hpp"

namespace ascdg::opt {

/// Smooth concave bowl with additive Gaussian noise:
///   f(x) = 1 - ||x - optimum||^2 + sigma * N(0,1).
class NoisyQuadratic final : public Objective {
 public:
  NoisyQuadratic(std::vector<double> optimum, double sigma)
      : optimum_(std::move(optimum)), sigma_(sigma) {}

  [[nodiscard]] std::size_t dimension() const noexcept override {
    return optimum_.size();
  }
  [[nodiscard]] double evaluate(std::span<const double> x,
                                std::uint64_t eval_seed) override;

  /// Noise-free value, for test assertions.
  [[nodiscard]] double true_value(std::span<const double> x) const noexcept;

 private:
  std::vector<double> optimum_;
  double sigma_;
};

/// Bernoulli objective shaped like the CDG problem: the underlying hit
/// probability decays exponentially with the distance from the optimum,
///   p(x) = peak * exp(-sharpness * ||x - optimum||^2),
/// and evaluate() returns the mean of `samples_per_eval` Bernoulli(p)
/// draws — the exact noise model of T_N(t).
class BernoulliHill final : public Objective {
 public:
  BernoulliHill(std::vector<double> optimum, double peak, double sharpness,
                std::size_t samples_per_eval)
      : optimum_(std::move(optimum)),
        peak_(peak),
        sharpness_(sharpness),
        samples_(samples_per_eval) {}

  [[nodiscard]] std::size_t dimension() const noexcept override {
    return optimum_.size();
  }
  [[nodiscard]] double evaluate(std::span<const double> x,
                                std::uint64_t eval_seed) override;

  [[nodiscard]] double hit_probability(std::span<const double> x) const noexcept;

  /// Total Bernoulli draws made so far (the "simulations" cost metric).
  [[nodiscard]] std::size_t draws() const noexcept { return draws_; }

 private:
  std::vector<double> optimum_;
  double peak_;
  double sharpness_;
  std::size_t samples_;
  std::size_t draws_ = 0;
};

/// Almost-flat landscape with a narrow spike at the optimum — the
/// pathological case §IV-A describes (no gradient information anywhere
/// except next to the target). Used by the approximated-target ablation.
class FlatSpike final : public Objective {
 public:
  FlatSpike(std::vector<double> optimum, double spike_radius,
            std::size_t samples_per_eval)
      : optimum_(std::move(optimum)),
        radius_(spike_radius),
        samples_(samples_per_eval) {}

  [[nodiscard]] std::size_t dimension() const noexcept override {
    return optimum_.size();
  }
  [[nodiscard]] double evaluate(std::span<const double> x,
                                std::uint64_t eval_seed) override;

  [[nodiscard]] double hit_probability(std::span<const double> x) const noexcept;

 private:
  std::vector<double> optimum_;
  double radius_;
  std::size_t samples_;
};

/// Two-peak surface (local + global optimum) with additive noise, for
/// checking that trace/step dynamics behave sensibly on multimodal
/// landscapes.
class TwoPeaks final : public Objective {
 public:
  TwoPeaks(std::vector<double> global_opt, std::vector<double> local_opt,
           double local_height, double sigma);

  [[nodiscard]] std::size_t dimension() const noexcept override {
    return global_.size();
  }
  [[nodiscard]] double evaluate(std::span<const double> x,
                                std::uint64_t eval_seed) override;

  [[nodiscard]] double true_value(std::span<const double> x) const noexcept;

 private:
  std::vector<double> global_;
  std::vector<double> local_;
  double local_height_;
  double sigma_;
};

/// Decorator that counts evaluations of an inner objective (for budget
/// assertions in tests and benches). Batched dispatch passes through to
/// the inner objective's evaluate_batch, so a native batch
/// implementation keeps working underneath the counter.
class CountingObjective final : public Objective {
 public:
  explicit CountingObjective(Objective& inner) noexcept : inner_(&inner) {}
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return inner_->dimension();
  }
  [[nodiscard]] double evaluate(std::span<const double> x,
                                std::uint64_t eval_seed) override {
    ++count_;
    return inner_->evaluate(x, eval_seed);
  }
  [[nodiscard]] std::vector<double> evaluate_batch(
      std::span<const Point> xs,
      std::span<const std::uint64_t> seeds) override {
    count_ += xs.size();
    return inner_->evaluate_batch(xs, seeds);
  }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  Objective* inner_;
  std::size_t count_ = 0;
};

/// Decorator that forces the *scalar* dispatch path: it inherits the
/// default evaluate_batch (a loop over scalar evaluate), hiding any
/// native batch implementation of the inner objective. The reference
/// side of batch-vs-scalar equivalence tests and benches.
class ScalarizedObjective final : public Objective {
 public:
  explicit ScalarizedObjective(Objective& inner) noexcept : inner_(&inner) {}
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return inner_->dimension();
  }
  [[nodiscard]] double evaluate(std::span<const double> x,
                                std::uint64_t eval_seed) override {
    return inner_->evaluate(x, eval_seed);
  }

 private:
  Objective* inner_;
};

/// Decorator with a hand-written native evaluate_batch (point loop over
/// the inner objective) that records every dispatched batch size — lets
/// tests assert both that optimizers really batch whole stencils and
/// that a native override reproduces the default path bit-for-bit.
class BatchRecordingObjective final : public Objective {
 public:
  explicit BatchRecordingObjective(Objective& inner) noexcept
      : inner_(&inner) {}
  [[nodiscard]] std::size_t dimension() const noexcept override {
    return inner_->dimension();
  }
  [[nodiscard]] double evaluate(std::span<const double> x,
                                std::uint64_t eval_seed) override {
    batch_sizes_.push_back(1);
    return inner_->evaluate(x, eval_seed);
  }
  [[nodiscard]] std::vector<double> evaluate_batch(
      std::span<const Point> xs,
      std::span<const std::uint64_t> seeds) override {
    batch_sizes_.push_back(xs.size());
    std::vector<double> values;
    values.reserve(xs.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      values.push_back(inner_->evaluate(xs[i], seeds[i]));
    }
    return values;
  }
  [[nodiscard]] const std::vector<std::size_t>& batch_sizes() const noexcept {
    return batch_sizes_;
  }
  [[nodiscard]] std::size_t max_batch_size() const noexcept {
    std::size_t max = 0;
    for (const std::size_t n : batch_sizes_) max = std::max(max, n);
    return max;
  }

 private:
  Objective* inner_;
  std::vector<std::size_t> batch_sizes_;
};

}  // namespace ascdg::opt
