#include "opt/implicit_filtering.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/run_state.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"

namespace ascdg::opt {

namespace {

void check_options(const Objective& objective, std::span<const double> x0,
                   const ImplicitFilteringOptions& options) {
  if (options.directions == 0) {
    throw util::ConfigError("implicit filtering needs at least one direction");
  }
  if (options.halve_patience == 0) {
    throw util::ConfigError("implicit filtering halve_patience must be >= 1");
  }
  if (!(options.initial_step > 0.0) || !(options.min_step > 0.0)) {
    throw util::ConfigError("implicit filtering steps must be positive");
  }
  if (!(options.lower < options.upper)) {
    throw util::ConfigError("implicit filtering box is empty (lower >= upper)");
  }
  if (x0.size() != objective.dimension()) {
    throw util::ConfigError(
        "starting point dimension " + std::to_string(x0.size()) +
        " != objective dimension " + std::to_string(objective.dimension()));
  }
  if (objective.dimension() == 0) {
    throw util::ConfigError("objective has zero dimension");
  }
}

std::vector<double> clamped(std::span<const double> x, double lo, double hi) {
  std::vector<double> out(x.begin(), x.end());
  for (double& v : out) v = std::clamp(v, lo, hi);
  return out;
}

/// One stencil direction: either a random unit vector or +-e_i.
std::vector<double> make_direction(DirectionMode mode, std::size_t index,
                                   std::size_t dim, util::Xoshiro256& rng) {
  std::vector<double> d(dim, 0.0);
  if (mode == DirectionMode::kCoordinate) {
    // 2*dim stencil points cycled: +e0, -e0, +e1, -e1, ...
    const std::size_t axis = (index / 2) % dim;
    d[axis] = (index % 2 == 0) ? 1.0 : -1.0;
    return d;
  }
  if (mode == DirectionMode::kRademacher) {
    for (double& v : d) v = rng.bernoulli(0.5) ? 1.0 : -1.0;
    return d;
  }
  if (mode == DirectionMode::kSparse) {
    bool any = false;
    while (!any) {
      for (double& v : d) {
        if (rng.bernoulli(0.25)) {
          v = rng.bernoulli(0.5) ? 1.0 : -1.0;
          any = true;
        } else {
          v = 0.0;
        }
      }
    }
    return d;
  }
  double norm = 0.0;
  do {
    norm = 0.0;
    for (double& v : d) {
      v = rng.normal();
      norm += v * v;
    }
  } while (norm == 0.0);
  norm = std::sqrt(norm);
  for (double& v : d) v /= norm;
  return d;
}

}  // namespace

OptResult implicit_filtering(Objective& objective, std::span<const double> x0,
                             const ImplicitFilteringOptions& options) {
  check_options(objective, x0, options);
  const std::size_t dim = objective.dimension();
  util::Xoshiro256 rng(options.seed);
  std::uint64_t seed_state = options.seed ^ 0xA5CD6F11E51D5EEDULL;
  util::SeedStream eval_seeds(util::splitmix64_next(seed_state));

  // Process-wide convergence books (registration is cold; the handles'
  // mutators are wait-free).
  obs::Registry& reg = obs::registry();
  obs::Counter& m_iterations = reg.counter("ascdg_opt_iterations_total");
  obs::Counter& m_evaluations = reg.counter("ascdg_opt_evaluations_total");
  obs::Counter& m_halvings = reg.counter("ascdg_opt_step_halvings_total");
  obs::Counter& m_resamples = reg.counter("ascdg_opt_center_resamples_total");

  OptResult result;
  std::vector<double> center = clamped(x0, options.lower, options.upper);
  double h = options.initial_step;
  double center_value = 0.0;
  std::size_t stale_rounds = 0;
  std::size_t start_iteration = 0;

  // All evaluations go through one batched dispatch: eval seeds are
  // drawn sequentially in point order, so the trajectory is identical
  // whether the objective implements evaluate_batch natively or falls
  // back to the scalar loop. Batches are truncated to the remaining
  // budget before dispatch, so `evaluations` never exceeds
  // max_evaluations and OptResult reports the exact count.
  std::size_t evaluations = 0;
  const auto sample_batch = [&](std::span<const Point> points) {
    std::vector<std::uint64_t> seeds(points.size());
    for (auto& seed : seeds) seed = eval_seeds.next();
    auto values = objective.evaluate_batch(points, seeds);
    evaluations += points.size();
    m_evaluations.add(points.size());
    return values;
  };

  result.best_point = center;
  result.reason = StopReason::kMaxIterations;
  if (options.max_evaluations == 0) {
    result.reason = StopReason::kMaxEvaluations;
    return result;
  }
  if (options.resume != nullptr) {
    // Warm start: restore the complete iteration state, including the
    // direction generator and the eval-seed counter, so the resumed
    // trajectory is indistinguishable from the uninterrupted one.
    const IfCheckpoint& ckpt = *options.resume;
    if (ckpt.center.size() != dim) {
      throw util::ConfigError(
          "implicit filtering resume: checkpoint dimension " +
          std::to_string(ckpt.center.size()) + " != objective dimension " +
          std::to_string(dim));
    }
    start_iteration = ckpt.next_iteration;
    center = clamped(ckpt.center, options.lower, options.upper);
    center_value = ckpt.center_value;
    h = ckpt.step;
    stale_rounds = ckpt.stale_rounds;
    evaluations = ckpt.evaluations;
    result.best_point = ckpt.best_point;
    result.best_value = ckpt.best_value;
    result.trace = ckpt.trace;
    rng.restore(ckpt.rng_state);
    eval_seeds = util::SeedStream(eval_seeds.root(), ckpt.eval_seed_counter);
    // Re-apply the stop conditions the checkpointed iteration may have
    // already triggered (the original run breaks before checkpointing
    // again, so the decision must be reproduced here).
    if (options.target_value.has_value() &&
        center_value >= *options.target_value) {
      result.reason = StopReason::kTargetReached;
      result.evaluations = evaluations;
      return result;
    }
    if (h < options.min_step) {
      result.reason = StopReason::kMinStep;
      result.evaluations = evaluations;
      return result;
    }
    if (evaluations >= options.max_evaluations) {
      result.reason = StopReason::kMaxEvaluations;
      result.evaluations = evaluations;
      return result;
    }
  } else {
    center_value = sample_batch({&center, 1}).front();
    result.best_value = center_value;
  }

  for (std::size_t iter = start_iteration; iter < options.max_iterations;
       ++iter) {
    if (evaluations >= options.max_evaluations) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }
    // Assemble the iteration's whole batch: the resampled center (noise
    // modification #2) followed by the stencil, truncated to the budget.
    const bool resample = options.resample_center && iter > 0;
    std::size_t budget = options.max_evaluations - evaluations;
    std::vector<Point> batch;
    batch.reserve(std::min(options.directions, budget) + 1);
    if (resample) {
      batch.push_back(center);
      --budget;
    }
    const std::size_t n_dirs = std::min(options.directions, budget);
    for (std::size_t d = 0; d < n_dirs; ++d) {
      const auto direction =
          make_direction(options.direction_mode,
                         iter * options.directions + d, dim, rng);
      Point candidate(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        candidate[i] =
            std::clamp(center[i] + h * direction[i], options.lower, options.upper);
      }
      batch.push_back(std::move(candidate));
    }
    const std::vector<double> values = sample_batch(batch);

    std::size_t resamples = 0;
    std::size_t first_candidate = 0;
    if (resample) {
      center_value = values[0];
      first_candidate = 1;
      resamples = 1;
      m_resamples.inc();
    }

    double best = center_value;
    std::vector<double> next_center = center;
    bool moved = false;
    for (std::size_t k = first_candidate; k < values.size(); ++k) {
      if (values[k] > best) {
        best = values[k];
        next_center = batch[k];
        moved = true;
      }
    }

    if (best > result.best_value) {
      result.best_value = best;
      result.best_point = next_center;
    }

    const double step_this_iter = h;
    bool halved = false;
    if (!moved) {
      if (++stale_rounds >= options.halve_patience) {
        h /= 2.0;
        stale_rounds = 0;
        halved = true;
        m_halvings.inc();
      }
    } else {
      stale_rounds = 0;
      center = std::move(next_center);
      center_value = best;
    }

    result.trace.push_back({iter, center_value, best, step_this_iter,
                            evaluations, moved, resamples, halved});
    m_iterations.inc();
    // Heartbeat for /runz (and the watchdog's progress signal rides on
    // the iteration counter above).
    obs::run_state().set_optimizer(iter, center_value);
    if (options.trace != nullptr) {
      // Note center_value here is the *post-move* objective — the value
      // the next iteration starts from, i.e. the convergence curve.
      options.trace->emit(util::JsonObject{}
                              .add("event", "opt_iter")
                              .add("label", options.trace_label)
                              .add("iter", iter)
                              .add("objective", center_value)
                              .add("best", best)
                              .add("step", step_this_iter)
                              .add("evals", evaluations)
                              .add("moved", moved)
                              .add("resamples", resamples)
                              .add("halved", halved));
    }

    if (options.on_checkpoint) {
      IfCheckpoint ckpt;
      ckpt.next_iteration = iter + 1;
      ckpt.center = center;
      ckpt.center_value = center_value;
      ckpt.step = h;
      ckpt.stale_rounds = stale_rounds;
      ckpt.evaluations = evaluations;
      ckpt.best_point = result.best_point;
      ckpt.best_value = result.best_value;
      ckpt.trace = result.trace;
      ckpt.rng_state = rng.state();
      ckpt.eval_seed_counter = eval_seeds.counter();
      options.on_checkpoint(ckpt);
    }

    if (options.target_value.has_value() && center_value >= *options.target_value) {
      result.reason = StopReason::kTargetReached;
      break;
    }
    if (h < options.min_step) {
      result.reason = StopReason::kMinStep;
      break;
    }
    if (evaluations >= options.max_evaluations) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }
  }

  result.evaluations = evaluations;
  return result;
}

}  // namespace ascdg::opt
