#include "opt/implicit_filtering.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"

namespace ascdg::opt {

namespace {

void check_options(const Objective& objective, std::span<const double> x0,
                   const ImplicitFilteringOptions& options) {
  if (options.directions == 0) {
    throw util::ConfigError("implicit filtering needs at least one direction");
  }
  if (options.halve_patience == 0) {
    throw util::ConfigError("implicit filtering halve_patience must be >= 1");
  }
  if (!(options.initial_step > 0.0) || !(options.min_step > 0.0)) {
    throw util::ConfigError("implicit filtering steps must be positive");
  }
  if (!(options.lower < options.upper)) {
    throw util::ConfigError("implicit filtering box is empty (lower >= upper)");
  }
  if (x0.size() != objective.dimension()) {
    throw util::ConfigError(
        "starting point dimension " + std::to_string(x0.size()) +
        " != objective dimension " + std::to_string(objective.dimension()));
  }
  if (objective.dimension() == 0) {
    throw util::ConfigError("objective has zero dimension");
  }
}

std::vector<double> clamped(std::span<const double> x, double lo, double hi) {
  std::vector<double> out(x.begin(), x.end());
  for (double& v : out) v = std::clamp(v, lo, hi);
  return out;
}

/// One stencil direction: either a random unit vector or +-e_i.
std::vector<double> make_direction(DirectionMode mode, std::size_t index,
                                   std::size_t dim, util::Xoshiro256& rng) {
  std::vector<double> d(dim, 0.0);
  if (mode == DirectionMode::kCoordinate) {
    // 2*dim stencil points cycled: +e0, -e0, +e1, -e1, ...
    const std::size_t axis = (index / 2) % dim;
    d[axis] = (index % 2 == 0) ? 1.0 : -1.0;
    return d;
  }
  if (mode == DirectionMode::kRademacher) {
    for (double& v : d) v = rng.bernoulli(0.5) ? 1.0 : -1.0;
    return d;
  }
  if (mode == DirectionMode::kSparse) {
    bool any = false;
    while (!any) {
      for (double& v : d) {
        if (rng.bernoulli(0.25)) {
          v = rng.bernoulli(0.5) ? 1.0 : -1.0;
          any = true;
        } else {
          v = 0.0;
        }
      }
    }
    return d;
  }
  double norm = 0.0;
  do {
    norm = 0.0;
    for (double& v : d) {
      v = rng.normal();
      norm += v * v;
    }
  } while (norm == 0.0);
  norm = std::sqrt(norm);
  for (double& v : d) v /= norm;
  return d;
}

}  // namespace

OptResult implicit_filtering(Objective& objective, std::span<const double> x0,
                             const ImplicitFilteringOptions& options) {
  check_options(objective, x0, options);
  const std::size_t dim = objective.dimension();
  util::Xoshiro256 rng(options.seed);
  std::uint64_t seed_state = options.seed ^ 0xA5CD6F11E51D5EEDULL;
  util::SeedStream eval_seeds(util::splitmix64_next(seed_state));

  // Process-wide convergence books (registration is cold; the handles'
  // mutators are wait-free).
  obs::Registry& reg = obs::registry();
  obs::Counter& m_iterations = reg.counter("ascdg_opt_iterations_total");
  obs::Counter& m_evaluations = reg.counter("ascdg_opt_evaluations_total");
  obs::Counter& m_halvings = reg.counter("ascdg_opt_step_halvings_total");
  obs::Counter& m_resamples = reg.counter("ascdg_opt_center_resamples_total");

  OptResult result;
  std::vector<double> center = clamped(x0, options.lower, options.upper);
  double h = options.initial_step;

  std::size_t evaluations = 0;
  const auto sample = [&](std::span<const double> x) {
    const double value = objective.evaluate(x, eval_seeds.next());
    ++evaluations;
    m_evaluations.inc();
    return value;
  };

  double center_value = sample(center);
  result.best_point = center;
  result.best_value = center_value;
  result.reason = StopReason::kMaxIterations;
  std::size_t stale_rounds = 0;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    if (evaluations >= options.max_evaluations) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }
    // Center resampling (noise modification #2).
    std::size_t resamples = 0;
    if (options.resample_center && iter > 0) {
      center_value = sample(center);
      resamples = 1;
      m_resamples.inc();
    }

    double best = center_value;
    std::vector<double> next_center = center;
    bool moved = false;

    for (std::size_t d = 0; d < options.directions; ++d) {
      if (evaluations >= options.max_evaluations) break;
      const auto direction =
          make_direction(options.direction_mode,
                         iter * options.directions + d, dim, rng);
      std::vector<double> candidate(dim);
      for (std::size_t i = 0; i < dim; ++i) {
        candidate[i] =
            std::clamp(center[i] + h * direction[i], options.lower, options.upper);
      }
      const double value = sample(candidate);
      if (value > best) {
        best = value;
        next_center = std::move(candidate);
        moved = true;
      }
    }

    if (best > result.best_value) {
      result.best_value = best;
      result.best_point = next_center;
    }

    const double step_this_iter = h;
    bool halved = false;
    if (!moved) {
      if (++stale_rounds >= options.halve_patience) {
        h /= 2.0;
        stale_rounds = 0;
        halved = true;
        m_halvings.inc();
      }
    } else {
      stale_rounds = 0;
      center = std::move(next_center);
      center_value = best;
    }

    result.trace.push_back({iter, center_value, best, step_this_iter,
                            evaluations, moved, resamples, halved});
    m_iterations.inc();
    if (options.trace != nullptr) {
      // Note center_value here is the *post-move* objective — the value
      // the next iteration starts from, i.e. the convergence curve.
      options.trace->emit(util::JsonObject{}
                              .add("event", "opt_iter")
                              .add("label", options.trace_label)
                              .add("iter", iter)
                              .add("objective", center_value)
                              .add("best", best)
                              .add("step", step_this_iter)
                              .add("evals", evaluations)
                              .add("moved", moved)
                              .add("resamples", resamples)
                              .add("halved", halved));
    }

    if (options.target_value.has_value() && center_value >= *options.target_value) {
      result.reason = StopReason::kTargetReached;
      break;
    }
    if (h < options.min_step) {
      result.reason = StopReason::kMinStep;
      break;
    }
    if (evaluations >= options.max_evaluations) {
      result.reason = StopReason::kMaxEvaluations;
      break;
    }
  }

  result.evaluations = evaluations;
  return result;
}

}  // namespace ascdg::opt
