#include "flow/campaign.hpp"

#include <filesystem>
#include <memory>
#include <optional>
#include <utility>

#include "flow/artifacts.hpp"
#include "flow/pipeline.hpp"
#include "flow/stages.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"
#include "util/jsonl.hpp"
#include "util/log.hpp"

namespace ascdg::flow {

namespace {

/// Sub-session policy for the campaign: under --resume an existing
/// manifest is re-opened (validated + replayed), but a sub-session the
/// interrupted run never reached is created fresh — a campaign killed
/// while optimizing target 7 has no manifests for targets 8..n yet.
Session open_or_create(const std::filesystem::path& dir, bool resume,
                       std::uint64_t fingerprint, std::uint64_t seed,
                       std::span<const std::string> stage_names) {
  if (resume && std::filesystem::exists(dir / "manifest.json")) {
    return Session::open(dir, fingerprint, stage_names);
  }
  return Session::create(dir, fingerprint, seed, stage_names);
}

/// Two-digit directory names keep `ls` of a campaign root in target
/// order for up to 100 targets (beyond that they still sort per-width).
std::string target_dir_name(std::size_t t) {
  std::string num = std::to_string(t);
  if (num.size() < 2) num.insert(0, "0");
  return "target_" + num;
}

void write_campaign_manifest(const std::filesystem::path& path,
                             std::uint64_t fingerprint, std::uint64_t seed,
                             std::size_t targets) {
  atomic_write_file(path, util::JsonObject{}
                              .add("schema", kCampaignSchema)
                              .add("fingerprint", hex_u64(fingerprint))
                              .add("seed", hex_u64(seed))
                              .add("targets", targets)
                              .str() +
                              "\n");
}

void validate_campaign_manifest(const std::filesystem::path& path,
                                std::uint64_t fingerprint,
                                std::size_t targets) {
  const util::JsonValue doc = read_json_file(path);
  if (doc.at("schema").as_string() != kCampaignSchema) {
    throw util::ConfigError("campaign manifest " + path.string() +
                            ": unknown schema '" + doc.at("schema").as_string() +
                            "' (expected '" + std::string(kCampaignSchema) +
                            "')");
  }
  if (parse_hex_u64(doc.at("fingerprint")) != fingerprint) {
    throw util::ConfigError(
        "campaign manifest " + path.string() +
        ": config fingerprint mismatch — the checkpoints in this directory "
        "were produced by a different configuration");
  }
  if (doc.at("targets").as_size() != targets) {
    throw util::ConfigError("campaign manifest " + path.string() +
                            ": target count mismatch (manifest has " +
                            std::to_string(doc.at("targets").as_size()) +
                            ", this run has " + std::to_string(targets) + ")");
  }
}

}  // namespace

std::size_t best_sample_for(const cdg::RandomSampleResult& sampling,
                            const neighbors::ApproximatedTarget& target) {
  ASCDG_ASSERT(!sampling.samples.empty(), "empty sampling result");
  std::size_t best = 0;
  double best_value = target.value(sampling.samples[0].stats);
  for (std::size_t i = 1; i < sampling.samples.size(); ++i) {
    const double value = target.value(sampling.samples[i].stats);
    if (value > best_value) {
      best_value = value;
      best = i;
    }
  }
  return best;
}

MultiTargetResult run_multi_target(
    const duv::Duv& duv, exec::Backend& farm, const FlowConfig& config,
    std::span<const neighbors::ApproximatedTarget> targets,
    const tgen::TestTemplate& seed_template) {
  if (targets.empty()) {
    throw util::ConfigError("multi-target flow needs at least one target");
  }
  // Reuse the runner's budget/session validation.
  const CdgRunner runner(duv, farm, config);

  MultiTargetResult result;
  const bool durable = !config.session_dir.empty();
  const std::filesystem::path root = config.session_dir;
  if (durable) {
    result.session_dir = config.session_dir;
    // Sub-sessions reap their own directories on open/create; the
    // campaign root (campaign.json lives here) is ours to clean.
    util::remove_stale_tmp_files(root);
    const std::uint64_t campaign_fp = config_fingerprint(
        config, "campaign:" + std::to_string(targets.size()));
    const std::filesystem::path manifest = root / "campaign.json";
    if (config.resume && std::filesystem::exists(manifest)) {
      validate_campaign_manifest(manifest, campaign_fp, targets.size());
      util::log_info("campaign: resuming '", config.session_dir, "' with ",
                     targets.size(), " targets");
    } else {
      write_campaign_manifest(manifest, campaign_fp, config.seed,
                              targets.size());
    }
  }

  // --- Shared phases: skeletonize once, sample once ---------------------
  const std::vector<std::string> shared_stages = {"skeletonize", "sampling"};
  std::optional<Session> shared_session;
  if (durable) {
    shared_session = open_or_create(
        root / "shared", config.resume,
        config_fingerprint(config, "campaign-shared"), config.seed,
        shared_stages);
  }
  FlowResult shared;
  shared.seed_template = seed_template.name();
  StageContext shared_ctx;
  shared_ctx.duv = &duv;
  shared_ctx.farm = &farm;
  shared_ctx.config = &config;
  // Score against the first target just to fill the field; every target
  // re-scores below from the retained per-sample stats.
  shared_ctx.target = &targets[0];
  shared_ctx.session = shared_session.has_value() ? &*shared_session : nullptr;
  shared_ctx.result = &shared;
  shared_ctx.seed_template = seed_template;
  Pipeline shared_pipeline;
  shared_pipeline.add(std::make_unique<SkeletonizeStage>())
      .add(std::make_unique<SampleStage>());
  shared_pipeline.execute(shared_ctx);
  result.sampling = shared.sampling;
  util::log_info("multi-target: shared sampling of ",
                 result.sampling.simulations, " sims for ", targets.size(),
                 " targets");
  if (shared_session.has_value()) {
    result.sessions.push_back(shared_session->summary());
  }

  // --- Per-target optimization + harvest --------------------------------
  const std::vector<std::string> target_stages = {"optimization", "refinement",
                                                  "harvest"};
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const auto& target = targets[t];
    FlowResult flow;
    flow.seed_template = seed_template.name();
    flow.skeleton = shared.skeleton;
    flow.before.name = "Before CDG";
    flow.before.stats = coverage::SimStats(duv.space().size());

    flow.sampling = result.sampling;
    flow.sampling.best_index = best_sample_for(result.sampling, target);
    // Attribute the shared cost once (to the first target).
    flow.sampling_phase = {"Sampling phase",
                           t == 0 ? result.sampling.simulations : 0,
                           result.sampling.combined};

    std::optional<Session> target_session;
    if (durable) {
      target_session = open_or_create(
          root / target_dir_name(t), config.resume,
          config_fingerprint(config, "campaign-target-" + std::to_string(t)),
          config.seed, target_stages);
    }

    StageContext ctx;
    ctx.duv = &duv;
    ctx.farm = &farm;
    ctx.config = &config;
    ctx.target = &target;
    ctx.session = target_session.has_value() ? &*target_session : nullptr;
    ctx.result = &flow;
    ctx.seed_template = seed_template;
    Pipeline per_target;
    per_target.add(std::make_unique<OptimizeStage>(0x3417A00ULL + t))
        .add(std::make_unique<RefineStage>())
        .add(std::make_unique<HarvestStage>(
            0x4A12E00ULL + t, "_cdg_best_t" + std::to_string(t)));
    per_target.execute(ctx);

    if (target_session.has_value()) {
      result.sessions.push_back(target_session->summary());
    }
    result.per_target.push_back(std::move(flow));
  }

  result.sims_saved =
      (targets.size() - 1) * result.sampling.simulations;
  return result;
}

}  // namespace ascdg::flow
