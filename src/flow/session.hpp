// Durable on-disk sessions for the stage pipeline.
//
// A session is a directory holding a versioned JSON manifest
// ("ascdg-session-v1": config fingerprint, root RNG seed, per-stage
// status/sims/wall) plus one artifact file per completed stage
// (templates and skeletons in the DSL via tgen::file_io, everything
// else as JSON). Every write is atomic — temp file in the same
// directory, then rename — so a SIGKILL at any instant leaves either
// the previous checkpoint or the new one, never a torn file. Resuming
// (`ascdg run --session=DIR --resume`) re-opens the manifest, verifies
// the config fingerprint, and replays completed stages from their
// artifacts instead of re-simulating them. See docs/sessions.md.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "flow/types.hpp"

namespace ascdg::flow {

inline constexpr std::string_view kSessionSchema = "ascdg-session-v1";
inline constexpr std::string_view kCampaignSchema = "ascdg-campaign-v1";

// Telemetry artifacts the TimeSeriesRecorder keeps alongside the stage
// checkpoints (docs/sessions.md "Session layout"). One name shared by
// the writer (ascdg run --timeline) and the readers (ascdg inspect,
// /timeseries) so neither hard-codes the other's file name.
inline constexpr std::string_view kTelemetryFile = "telemetry.jsonl";
inline constexpr std::string_view kTelemetryIndexFile = "telemetry.index.json";
/// Trace sink the CLI places inside a session directory (--trace with
/// --session defaults here; ascdg inspect profiles it).
inline constexpr std::string_view kTraceFile = "trace.jsonl";

/// Writes `content` to `path` atomically and durably — temp file,
/// fsync, rename, fsync of the parent directory — via
/// util::atomic_write_file (see util/fs.hpp for the durability
/// argument and the FailurePoint injection sites), then services the
/// crash hook below. Throws util::Error on IO failure; the temp file
/// never survives a failure.
///
/// Test hook: when the environment variable ASCDG_CRASH_AFTER_WRITES is
/// set to N > 0, the process raises SIGKILL immediately after the N-th
/// atomic write completes — the kill-and-resume tests use this to die
/// deterministically at a checkpoint boundary. A value that is not a
/// non-negative integer is a util::ConfigError, not a silent no-op.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view content);

/// One pipeline stage's entry in the manifest.
struct StageRecord {
  std::string name;
  std::string status = "pending";  ///< "pending" | "running" | "done"
  std::size_t sims = 0;            ///< simulations the stage cost
  double wall_ms = 0.0;

  [[nodiscard]] bool done() const noexcept { return status == "done"; }
};

/// Read-only view of a session for reports and /runz.
struct SessionSummary {
  std::string dir;
  std::uint64_t seed = 0;
  std::uint64_t resumes = 0;
  /// Last completed stage at the most recent resume ("" for a fresh
  /// run, "none" when resumed before any stage completed).
  std::string resumed_from;
  std::vector<StageRecord> stages;
};

class Session {
 public:
  /// Starts a fresh session: creates `dir` and writes a manifest with
  /// every stage pending. An existing manifest is overwritten (a
  /// non-resume run in the same directory starts over).
  static Session create(const std::filesystem::path& dir,
                        std::uint64_t fingerprint, std::uint64_t seed,
                        std::span<const std::string> stage_names);

  /// Re-opens an existing session for resume. Throws util::Error when
  /// the manifest is missing, util::ParseError when it is corrupt, and
  /// util::ConfigError when the schema, the config fingerprint, or the
  /// stage list does not match what this run would execute.
  static Session open(const std::filesystem::path& dir,
                      std::uint64_t expected_fingerprint,
                      std::span<const std::string> stage_names);

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }
  /// Path of a named artifact inside the session directory.
  [[nodiscard]] std::filesystem::path artifact_path(
      std::string_view file_name) const {
    return dir_ / file_name;
  }

  [[nodiscard]] bool stage_done(std::string_view name) const noexcept;
  /// Marks a stage in-flight and persists the manifest.
  void mark_running(std::string_view name);
  /// Marks a stage complete with its cost and persists the manifest.
  void mark_done(std::string_view name, std::size_t sims, double wall_ms);

  [[nodiscard]] const std::vector<StageRecord>& stages() const noexcept {
    return stages_;
  }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] std::uint64_t resumes() const noexcept { return resumes_; }
  /// See SessionSummary::resumed_from.
  [[nodiscard]] const std::string& resumed_from() const noexcept {
    return resumed_from_;
  }

  [[nodiscard]] SessionSummary summary() const;

  /// Atomically rewrites the manifest from the in-memory state.
  void write_manifest() const;

 private:
  Session() = default;

  std::filesystem::path dir_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t seed_ = 0;
  std::uint64_t resumes_ = 0;
  std::string resumed_from_;
  std::vector<StageRecord> stages_;
};

/// Fingerprint of everything that shapes the flow's trajectory: the
/// simulation/optimization budgets and seeds in `config` plus a
/// caller-supplied context key (unit + target identity). Telemetry
/// knobs (trace, serve, watchdog, session paths) are excluded — they
/// never change what gets simulated, so toggling them between a crash
/// and a resume is legal. A mismatch on resume is a hard error: the
/// checkpoints on disk answer a different question.
[[nodiscard]] std::uint64_t config_fingerprint(const FlowConfig& config,
                                               std::string_view context_key);

}  // namespace ascdg::flow
