#include "flow/pipeline.hpp"

#include <chrono>

#include "util/log.hpp"

namespace ascdg::flow {

Pipeline& Pipeline::add(std::unique_ptr<Stage> stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

std::vector<std::string> Pipeline::stage_names() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& stage : stages_) names.emplace_back(stage->name());
  return names;
}

void Pipeline::execute(StageContext& ctx) {
  using Clock = StageContext::Clock;
  for (const auto& stage : stages_) {
    const std::string name(stage->name());
    if (ctx.session != nullptr && ctx.session->stage_done(name)) {
      stage->load(ctx);
      util::log_info("session: stage '", name,
                     "' restored from checkpoint (0 simulations)");
      continue;
    }
    if (ctx.session != nullptr) ctx.session->mark_running(name);
    const std::size_t sims_before =
        ctx.farm != nullptr ? ctx.farm->total_simulations() : 0;
    const auto start = Clock::now();
    stage->run(ctx);
    if (ctx.session != nullptr) {
      stage->save(ctx);
      const std::size_t sims_after =
          ctx.farm != nullptr ? ctx.farm->total_simulations() : 0;
      ctx.session->mark_done(
          name, sims_after - sims_before,
          std::chrono::duration<double, std::milli>(Clock::now() - start)
              .count());
    }
  }
}

}  // namespace ascdg::flow
