// Multi-target CDG campaign — the paper's §VI future-work direction:
//
//   "the number of simulations required to hit each uncovered event ...
//    may be too high when many uncovered events are involved. We are
//    currently investigating methods that ... reduce the number of
//    simulations per event by using the same simulations for several
//    target events."
//
// The key observation: the random-sampling phase records the FULL
// per-event statistics of every sampled template, so one sampling pass
// can serve any number of targets — each target just re-scores the same
// samples with its own objective and starts its optimization from its
// own best sample. Only the (cheaper, focused) optimization and harvest
// phases are per-target.
//
// Since the stage-pipeline refactor this is a session-backed campaign
// driver: with FlowConfig::session_dir set, the campaign directory
// holds a "ascdg-campaign-v1" manifest, one shared session (skeletonize
// + sampling, paid once) and one session per target (optimization /
// refinement / harvest), each independently resumable. A SIGKILL while
// optimizing target 7 of 40 resumes at target 7's last optimizer
// iteration; targets 0-6 replay from their artifacts.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "flow/runner.hpp"
#include "flow/session.hpp"
#include "flow/types.hpp"

namespace ascdg::flow {

struct MultiTargetResult {
  /// The shared sampling phase (paid once).
  cdg::RandomSampleResult sampling;
  /// One flow result per target. The `sampling` member of each result
  /// is re-scored against that target (same stats, its own best index);
  /// sampling_phase.sims is attributed only to the first target so that
  /// summing flow_sims() over results gives the true total cost.
  std::vector<FlowResult> per_target;
  /// Simulations the shared sampling phase saved versus running the
  /// full flow independently per target.
  std::size_t sims_saved = 0;
  /// Campaign session root ("" for an ephemeral run).
  std::string session_dir;
  /// Manifest snapshots: the shared session first, then one per target.
  std::vector<SessionSummary> sessions;

  [[nodiscard]] std::size_t total_sims() const noexcept {
    std::size_t total = 0;
    for (const auto& result : per_target) total += result.flow_sims();
    return total;
  }
};

/// Re-scores a sampling result against a different target: returns the
/// index of the sample with the best target value.
[[nodiscard]] std::size_t best_sample_for(const cdg::RandomSampleResult& sampling,
                                          const neighbors::ApproximatedTarget& target);

/// Runs the shared-sampling multi-target campaign: one sampling phase
/// of the skeletonized `seed_template`, then per-target optimization
/// and harvest with `config`'s budgets. With `config.session_dir` set,
/// checkpoints the whole campaign under that directory (see above);
/// with `config.resume` also set, restarts from the last completed
/// checkpoint. Throws util::ConfigError when `targets` is empty or the
/// resumed campaign manifest does not match this configuration.
[[nodiscard]] MultiTargetResult run_multi_target(
    const duv::Duv& duv, exec::Backend& farm, const FlowConfig& config,
    std::span<const neighbors::ApproximatedTarget> targets,
    const tgen::TestTemplate& seed_template);

}  // namespace ascdg::flow
