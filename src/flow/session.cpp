#include "flow/session.hpp"

#include <atomic>
#include <bit>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "flow/artifacts.hpp"
#include "util/error.hpp"
#include "util/failure.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/jsonl.hpp"
#include "util/rng.hpp"

namespace ascdg::flow {

namespace {

/// Parses ASCDG_CRASH_AFTER_WRITES strictly: the whole value must be a
/// non-negative decimal integer. std::atol would map garbage ("12abc",
/// "yes") to a number or to 0 — silently disabling the crash hook and
/// letting a misconfigured kill-and-resume test pass vacuously.
long parse_crash_after_writes() {
  const char* env = std::getenv("ASCDG_CRASH_AFTER_WRITES");
  if (env == nullptr) return 0;
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || errno == ERANGE || value < 0) {
    throw util::ConfigError(
        "ASCDG_CRASH_AFTER_WRITES='" + std::string(env) +
        "' is not a non-negative integer — refusing to run with a "
        "misconfigured crash hook");
  }
  return value;
}

/// See the ASCDG_CRASH_AFTER_WRITES doc on atomic_write_file.
void maybe_crash_after_write() {
  static const long crash_after = parse_crash_after_writes();
  if (crash_after <= 0) return;
  static std::atomic<long> writes{0};
  if (writes.fetch_add(1, std::memory_order_relaxed) + 1 >= crash_after) {
    std::raise(SIGKILL);
  }
}

std::string manifest_text(std::uint64_t fingerprint, std::uint64_t seed,
                          std::uint64_t resumes,
                          const std::string& resumed_from,
                          const std::vector<StageRecord>& stages) {
  std::string stage_array = "[";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i != 0) stage_array += ',';
    stage_array += util::JsonObject{}
                       .add("name", stages[i].name)
                       .add("status", stages[i].status)
                       .add("sims", stages[i].sims)
                       .add("wall_ms", stages[i].wall_ms)
                       .str();
  }
  stage_array += ']';
  return util::JsonObject{}
             .add("schema", kSessionSchema)
             .add("fingerprint", hex_u64(fingerprint))
             .add("seed", hex_u64(seed))
             .add("resumes", resumes)
             .add("resumed_from", resumed_from)
             .add_raw("stages", stage_array)
             .str() +
         "\n";
}

}  // namespace

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view content) {
  util::atomic_write_file(path, content);
  maybe_crash_after_write();
}

Session Session::create(const std::filesystem::path& dir,
                        std::uint64_t fingerprint, std::uint64_t seed,
                        std::span<const std::string> stage_names) {
  util::remove_stale_tmp_files(dir);
  Session session;
  session.dir_ = dir;
  session.fingerprint_ = fingerprint;
  session.seed_ = seed;
  for (const auto& name : stage_names) {
    session.stages_.push_back({name, "pending", 0, 0.0});
  }
  session.write_manifest();
  return session;
}

Session Session::open(const std::filesystem::path& dir,
                      std::uint64_t expected_fingerprint,
                      std::span<const std::string> stage_names) {
  // A write that died between open and rename leaves a *.tmp next to
  // the artifacts; it holds no committed state, so re-opening the
  // session is the safe moment to reap it.
  util::remove_stale_tmp_files(dir);
  const std::filesystem::path manifest = dir / "manifest.json";
  if (const int e = util::FailurePoint::check(
          util::FailurePoint::Id::kManifestRead);
      e != 0) {
    throw util::Error("cannot read session manifest '" + manifest.string() +
                      "': " + std::strerror(e));
  }
  std::ifstream is(manifest, std::ios::binary);
  if (!is) {
    throw util::Error("cannot open session manifest '" + manifest.string() +
                      "' (did the session run before? resume needs an "
                      "existing --session directory)");
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const util::JsonValue doc = util::json_parse(buffer.str());

  const std::string& schema = doc.at("schema").as_string();
  if (schema != kSessionSchema) {
    throw util::ConfigError("session manifest '" + manifest.string() +
                            "': unsupported schema '" + schema + "' (want '" +
                            std::string(kSessionSchema) + "')");
  }
  Session session;
  session.dir_ = dir;
  session.fingerprint_ = parse_hex_u64(doc.at("fingerprint"));
  session.seed_ = parse_hex_u64(doc.at("seed"));
  session.resumes_ = doc.at("resumes").as_uint64();
  if (session.fingerprint_ != expected_fingerprint) {
    throw util::ConfigError(
        "session '" + dir.string() +
        "' was created with a different configuration (fingerprint " +
        hex_u64(session.fingerprint_) + " != " +
        hex_u64(expected_fingerprint) +
        "); refusing to resume — rerun without --resume to start over");
  }
  for (const auto& entry : doc.at("stages").as_array()) {
    StageRecord record;
    record.name = entry.at("name").as_string();
    record.status = entry.at("status").as_string();
    record.sims = entry.at("sims").as_size();
    record.wall_ms = entry.at("wall_ms").as_double();
    session.stages_.push_back(std::move(record));
  }
  if (stage_names.size() != session.stages_.size()) {
    throw util::ConfigError("session '" + dir.string() + "' records " +
                            std::to_string(session.stages_.size()) +
                            " stages but this flow runs " +
                            std::to_string(stage_names.size()));
  }
  for (std::size_t i = 0; i < stage_names.size(); ++i) {
    if (session.stages_[i].name != stage_names[i]) {
      throw util::ConfigError("session '" + dir.string() + "' stage " +
                              std::to_string(i) + " is '" +
                              session.stages_[i].name + "', expected '" +
                              stage_names[i] + "'");
    }
  }
  // Record where this resume picks up: the last completed stage. A
  // "running" stage was interrupted mid-flight; its partial artifacts
  // (e.g. the optimizer's iteration checkpoint) are reused by the stage
  // itself.
  session.resumed_from_ = "none";
  for (const auto& record : session.stages_) {
    if (record.done()) session.resumed_from_ = record.name;
  }
  ++session.resumes_;
  session.write_manifest();
  return session;
}

bool Session::stage_done(std::string_view name) const noexcept {
  for (const auto& record : stages_) {
    if (record.name == name) return record.done();
  }
  return false;
}

void Session::mark_running(std::string_view name) {
  for (auto& record : stages_) {
    if (record.name == name) {
      record.status = "running";
      write_manifest();
      return;
    }
  }
  throw util::NotFoundError("session: unknown stage '" + std::string(name) +
                            "'");
}

void Session::mark_done(std::string_view name, std::size_t sims,
                        double wall_ms) {
  for (auto& record : stages_) {
    if (record.name == name) {
      record.status = "done";
      record.sims = sims;
      record.wall_ms = wall_ms;
      write_manifest();
      return;
    }
  }
  throw util::NotFoundError("session: unknown stage '" + std::string(name) +
                            "'");
}

SessionSummary Session::summary() const {
  SessionSummary out;
  out.dir = dir_.string();
  out.seed = seed_;
  out.resumes = resumes_;
  out.resumed_from = resumed_from_;
  out.stages = stages_;
  return out;
}

void Session::write_manifest() const {
  atomic_write_file(dir_ / "manifest.json",
                    manifest_text(fingerprint_, seed_, resumes_,
                                  resumed_from_, stages_));
}

std::uint64_t config_fingerprint(const FlowConfig& config,
                                 std::string_view context_key) {
  std::uint64_t state = 0xA5CD5E551017ULL;
  const auto mix = [&state](std::uint64_t value) {
    state ^= value;
    (void)util::splitmix64_next(state);
  };
  const auto mix_double = [&mix](double value) {
    mix(std::bit_cast<std::uint64_t>(value));
  };
  mix(config.coarse_best_templates);
  mix(config.skeletonizer.subranges);
  mix(static_cast<std::uint64_t>(config.skeletonizer.spacing));
  mix(config.skeletonizer.mark_zero_weights ? 1 : 0);
  mix(config.sample_templates);
  mix(config.sample_sims);
  mix(config.opt_directions);
  mix(config.opt_sims_per_point);
  mix(config.opt_max_iterations);
  mix_double(config.opt_initial_step);
  mix(static_cast<std::uint64_t>(config.opt_direction_mode));
  mix(config.opt_halve_patience);
  mix_double(config.opt_min_step);
  mix(config.opt_resample_center ? 1 : 0);
  mix(config.opt_target_value.has_value() ? 1 : 0);
  mix_double(config.opt_target_value.value_or(0.0));
  mix(config.expand_target_by_correlation ? 1 : 0);
  mix_double(config.correlation_min_similarity);
  mix(config.refine_with_real_target ? 1 : 0);
  mix_double(config.refine_threshold);
  mix(config.refine_max_iterations);
  mix(config.harvest_sims);
  mix(config.seed);
  // Deliberately NOT mixed: config.backend (and the telemetry / serve /
  // session knobs). Backends are bit-identical by contract, so the
  // backend choice — like --serve or --timeline — cannot change what a
  // session computes, and a run started on one backend may resume on
  // another (exec_test pins this).
  for (const char c : context_key) {
    mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return state;
}

}  // namespace ascdg::flow
