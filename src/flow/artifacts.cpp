#include "flow/artifacts.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/failure.hpp"
#include "util/jsonl.hpp"

namespace ascdg::flow {

namespace {

void append_double(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, ptr);
}

/// Reads a double field, accepting the null that non-finite doubles
/// serialize as (round-trips to NaN).
double json_double(const util::JsonValue& value) {
  if (value.is_null()) return std::nan("");
  return value.as_double();
}

std::string json_uint_array(std::span<const std::size_t> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
  return out;
}

opt::StopReason stop_reason_from_string(const std::string& text) {
  for (const auto reason :
       {opt::StopReason::kMaxIterations, opt::StopReason::kMinStep,
        opt::StopReason::kTargetReached, opt::StopReason::kMaxEvaluations}) {
    if (text == opt::to_string(reason)) return reason;
  }
  throw util::Error("artifact: unknown stop reason '" + text + "'");
}

std::string to_json(const opt::IterationRecord& record) {
  return util::JsonObject{}
      .add("iteration", record.iteration)
      .add("center_value", record.center_value)
      .add("best_value", record.best_value)
      .add("step", record.step)
      .add("evaluations", record.evaluations)
      .add("moved", record.moved)
      .add("resamples", record.resamples)
      .add("halved", record.halved)
      .str();
}

opt::IterationRecord iteration_from_json(const util::JsonValue& value) {
  opt::IterationRecord record;
  record.iteration = value.at("iteration").as_size();
  record.center_value = json_double(value.at("center_value"));
  record.best_value = json_double(value.at("best_value"));
  record.step = json_double(value.at("step"));
  record.evaluations = value.at("evaluations").as_size();
  record.moved = value.at("moved").as_bool();
  record.resamples = value.at("resamples").as_size();
  record.halved = value.at("halved").as_bool();
  return record;
}

std::string trace_to_json(std::span<const opt::IterationRecord> trace) {
  std::string out = "[";
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i != 0) out += ',';
    out += to_json(trace[i]);
  }
  out += ']';
  return out;
}

std::vector<opt::IterationRecord> trace_from_json(
    const util::JsonValue& value) {
  std::vector<opt::IterationRecord> trace;
  for (const auto& entry : value.as_array()) {
    trace.push_back(iteration_from_json(entry));
  }
  return trace;
}

}  // namespace

std::string hex_u64(std::uint64_t value) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

std::uint64_t parse_hex_u64(const util::JsonValue& value) {
  const std::string& text = value.as_string();
  if (text.size() != 18 || !text.starts_with("0x")) {
    throw util::Error("artifact: expected 16-digit 0x hex, got '" + text + "'");
  }
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data() + 2, text.data() + text.size(), out, 16);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw util::Error("artifact: malformed hex value '" + text + "'");
  }
  return out;
}

std::string json_double_array(std::span<const double> values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    append_double(out, values[i]);
  }
  out += ']';
  return out;
}

std::vector<double> double_array_from_json(const util::JsonValue& value) {
  std::vector<double> out;
  for (const auto& entry : value.as_array()) out.push_back(json_double(entry));
  return out;
}

std::string to_json(const coverage::SimStats& stats) {
  return util::JsonObject{}
      .add("sims", stats.sims())
      .add_raw("hits", json_uint_array(stats.hit_counts()))
      .str();
}

coverage::SimStats sim_stats_from_json(const util::JsonValue& value) {
  std::vector<std::size_t> hits;
  for (const auto& entry : value.at("hits").as_array()) {
    hits.push_back(entry.as_size());
  }
  return coverage::SimStats::from_counts(value.at("sims").as_size(),
                                         std::move(hits));
}

std::string to_json(const PhaseOutcome& phase) {
  return util::JsonObject{}
      .add("name", phase.name)
      .add("sims", phase.sims)
      .add("wall_ms", phase.wall_ms)
      .add_raw("stats", to_json(phase.stats))
      .str();
}

PhaseOutcome phase_outcome_from_json(const util::JsonValue& value) {
  PhaseOutcome phase;
  phase.name = value.at("name").as_string();
  phase.sims = value.at("sims").as_size();
  phase.wall_ms = json_double(value.at("wall_ms"));
  phase.stats = sim_stats_from_json(value.at("stats"));
  return phase;
}

std::string to_json(const cdg::RandomSampleResult& sampling) {
  std::string samples = "[";
  for (std::size_t i = 0; i < sampling.samples.size(); ++i) {
    if (i != 0) samples += ',';
    const auto& sample = sampling.samples[i];
    samples += util::JsonObject{}
                   .add_raw("point", json_double_array(sample.point))
                   .add("target_value", sample.target_value)
                   .add_raw("stats", to_json(sample.stats))
                   .str();
  }
  samples += ']';
  return util::JsonObject{}
      .add_raw("samples", samples)
      .add("best_index", sampling.best_index)
      .add_raw("combined", to_json(sampling.combined))
      .add("simulations", sampling.simulations)
      .str();
}

cdg::RandomSampleResult sampling_from_json(const util::JsonValue& value) {
  cdg::RandomSampleResult sampling;
  for (const auto& entry : value.at("samples").as_array()) {
    cdg::Sample sample;
    sample.point = double_array_from_json(entry.at("point"));
    sample.target_value = json_double(entry.at("target_value"));
    sample.stats = sim_stats_from_json(entry.at("stats"));
    sampling.samples.push_back(std::move(sample));
  }
  sampling.best_index = value.at("best_index").as_size();
  sampling.combined = sim_stats_from_json(value.at("combined"));
  sampling.simulations = value.at("simulations").as_size();
  if (!sampling.samples.empty() &&
      sampling.best_index >= sampling.samples.size()) {
    throw util::Error("sampling artifact: best_index out of range");
  }
  return sampling;
}

std::string to_json(const opt::OptResult& result) {
  return util::JsonObject{}
      .add_raw("best_point", json_double_array(result.best_point))
      .add("best_value", result.best_value)
      .add("evaluations", result.evaluations)
      .add("reason", opt::to_string(result.reason))
      .add_raw("trace", trace_to_json(result.trace))
      .str();
}

opt::OptResult opt_result_from_json(const util::JsonValue& value) {
  opt::OptResult result;
  result.best_point = double_array_from_json(value.at("best_point"));
  result.best_value = json_double(value.at("best_value"));
  result.evaluations = value.at("evaluations").as_size();
  result.reason = stop_reason_from_string(value.at("reason").as_string());
  result.trace = trace_from_json(value.at("trace"));
  return result;
}

std::string to_json(const opt::IfCheckpoint& ckpt) {
  std::string rng = "[";
  for (std::size_t i = 0; i < ckpt.rng_state.size(); ++i) {
    if (i != 0) rng += ',';
    rng += '"' + hex_u64(ckpt.rng_state[i]) + '"';
  }
  rng += ']';
  return util::JsonObject{}
      .add("next_iteration", ckpt.next_iteration)
      .add_raw("center", json_double_array(ckpt.center))
      .add("center_value", ckpt.center_value)
      .add("step", ckpt.step)
      .add("stale_rounds", ckpt.stale_rounds)
      .add("evaluations", ckpt.evaluations)
      .add_raw("best_point", json_double_array(ckpt.best_point))
      .add("best_value", ckpt.best_value)
      .add_raw("trace", trace_to_json(ckpt.trace))
      .add_raw("rng_state", rng)
      .add("eval_seed_counter", hex_u64(ckpt.eval_seed_counter))
      .str();
}

opt::IfCheckpoint checkpoint_from_json(const util::JsonValue& value) {
  opt::IfCheckpoint ckpt;
  ckpt.next_iteration = value.at("next_iteration").as_size();
  ckpt.center = double_array_from_json(value.at("center"));
  ckpt.center_value = json_double(value.at("center_value"));
  ckpt.step = json_double(value.at("step"));
  ckpt.stale_rounds = value.at("stale_rounds").as_size();
  ckpt.evaluations = value.at("evaluations").as_size();
  ckpt.best_point = double_array_from_json(value.at("best_point"));
  ckpt.best_value = json_double(value.at("best_value"));
  ckpt.trace = trace_from_json(value.at("trace"));
  const auto& rng = value.at("rng_state").as_array();
  if (rng.size() != ckpt.rng_state.size()) {
    throw util::Error("checkpoint artifact: rng_state must have 4 words");
  }
  for (std::size_t i = 0; i < rng.size(); ++i) {
    ckpt.rng_state[i] = parse_hex_u64(rng[i]);
  }
  ckpt.eval_seed_counter = parse_hex_u64(value.at("eval_seed_counter"));
  return ckpt;
}

util::JsonValue read_json_file(const std::filesystem::path& path) {
  if (const int e = util::FailurePoint::check(
          util::FailurePoint::Id::kArtifactRead);
      e != 0) {
    throw util::Error("cannot open artifact '" + path.string() +
                      "': " + std::strerror(e));
  }
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw util::Error("cannot open artifact '" + path.string() + "'");
  }
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return util::json_parse(buffer.str());
}

}  // namespace ascdg::flow
