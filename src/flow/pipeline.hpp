// Pipeline: executes stages in order against one StageContext.
//
// With a session attached, every stage boundary is a durable
// checkpoint: the stage is marked "running" in the manifest, run, its
// artifact written atomically, then marked "done" with the simulations
// and wall time it cost (simulations measured as the farm's counter
// delta, so the manifest reconciles with the paper's cost metric). A
// stage already recorded "done" is restored from its artifact via
// load() instead — completed stages cost zero simulations on resume.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "flow/stage.hpp"

namespace ascdg::flow {

class Pipeline {
 public:
  Pipeline& add(std::unique_ptr<Stage> stage);

  /// Manifest stage list, in execution order.
  [[nodiscard]] std::vector<std::string> stage_names() const;

  /// Runs (or restores) every stage in order. Exceptions from a stage
  /// propagate; the session then still records the stage as "running",
  /// which a later resume treats as interrupted.
  void execute(StageContext& ctx);

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
};

}  // namespace ascdg::flow
