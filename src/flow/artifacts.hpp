// JSON round-trip for the stage pipeline's checkpoint artifacts.
//
// Each serializer emits compact JSON through util::JsonObject (doubles
// render shortest-round-trip, so values parse back bit-identically) and
// each reader reconstructs the typed result from util::json_parse
// output, throwing util::Error / util::ParseError on corrupt input.
// 64-bit quantities that a JSON double cannot hold exactly (seeds,
// fingerprints, raw RNG state) travel as 0x-prefixed hex strings.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "cdg/random_sample.hpp"
#include "coverage/repository.hpp"
#include "flow/types.hpp"
#include "opt/implicit_filtering.hpp"
#include "util/json.hpp"

namespace ascdg::flow {

/// 0x-prefixed, zero-padded 16-digit hex — the manifest encoding for
/// 64-bit values (JSON doubles are only exact to 2^53).
[[nodiscard]] std::string hex_u64(std::uint64_t value);
/// Inverse of hex_u64; throws util::Error for a non-hex string.
[[nodiscard]] std::uint64_t parse_hex_u64(const util::JsonValue& value);

[[nodiscard]] std::string to_json(const coverage::SimStats& stats);
[[nodiscard]] coverage::SimStats sim_stats_from_json(
    const util::JsonValue& value);

[[nodiscard]] std::string to_json(const PhaseOutcome& phase);
[[nodiscard]] PhaseOutcome phase_outcome_from_json(
    const util::JsonValue& value);

[[nodiscard]] std::string to_json(const cdg::RandomSampleResult& sampling);
[[nodiscard]] cdg::RandomSampleResult sampling_from_json(
    const util::JsonValue& value);

[[nodiscard]] std::string to_json(const opt::OptResult& result);
[[nodiscard]] opt::OptResult opt_result_from_json(const util::JsonValue& value);

[[nodiscard]] std::string to_json(const opt::IfCheckpoint& ckpt);
[[nodiscard]] opt::IfCheckpoint checkpoint_from_json(
    const util::JsonValue& value);

[[nodiscard]] std::string json_double_array(std::span<const double> values);
[[nodiscard]] std::vector<double> double_array_from_json(
    const util::JsonValue& value);

/// Reads and parses one JSON artifact. Throws util::Error when the file
/// cannot be read, util::ParseError when it is not valid JSON.
[[nodiscard]] util::JsonValue read_json_file(const std::filesystem::path& path);

}  // namespace ascdg::flow
