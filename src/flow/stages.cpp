#include "flow/stages.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>
#include <vector>

#include "cdg/cdg_objective.hpp"
#include "cdg/random_sample.hpp"
#include "cdg/skeletonizer.hpp"
#include "flow/artifacts.hpp"
#include "flow/runner.hpp"
#include "tgen/file_io.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace ascdg::flow {

namespace {

using Clock = StageContext::Clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Emits one "phase" trace event: the phase's simulation budget and
/// latency, plus any caller-supplied detail fields.
void trace_phase(obs::Tracer* sink, std::string_view key,
                 const PhaseOutcome& phase, const util::JsonObject& details) {
  if (sink == nullptr) return;
  util::JsonObject event;
  event.add("event", "phase")
      .add("phase", key)
      .add("label", phase.name)
      .add("sims", phase.sims)
      .add("wall_ms", phase.wall_ms)
      .merge(details);
  sink->emit(event);
}

/// Builds the implicit-filtering options the flow config asks for; the
/// optimize and refine stages share everything but budget/seed/label.
opt::ImplicitFilteringOptions base_if_options(const FlowConfig& config) {
  opt::ImplicitFilteringOptions options;
  options.directions = config.opt_directions;
  options.initial_step = config.opt_initial_step;
  options.min_step = config.opt_min_step;
  options.max_iterations = config.opt_max_iterations;
  options.resample_center = config.opt_resample_center;
  options.direction_mode = config.opt_direction_mode;
  options.halve_patience = config.opt_halve_patience;
  options.target_value = config.opt_target_value;
  options.trace = config.trace;
  return options;
}

coverage::SimStats merged(const coverage::SimStats& prefix,
                          const coverage::SimStats& suffix) {
  coverage::SimStats out = prefix;
  out.merge(suffix);
  return out;
}

/// Mid-stage optimizer checkpoint: the resumable IfCheckpoint plus the
/// stage's cost prefix (sims / stats / cache traffic / wall spent so
/// far), so a resumed stage reports totals as if never interrupted.
struct OptStageCheckpoint {
  opt::IfCheckpoint ifc;
  std::size_t sims = 0;
  coverage::SimStats stats;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  double wall_ms = 0.0;
  double evidence = 0.0;  ///< refine only: the probe's real-target value
};

void write_opt_checkpoint(const std::filesystem::path& path,
                          const OptStageCheckpoint& ckpt) {
  atomic_write_file(path, util::JsonObject{}
                              .add_raw("if", to_json(ckpt.ifc))
                              .add("sims", ckpt.sims)
                              .add_raw("stats", to_json(ckpt.stats))
                              .add("cache_hits", ckpt.cache_hits)
                              .add("cache_misses", ckpt.cache_misses)
                              .add("wall_ms", ckpt.wall_ms)
                              .add("evidence", ckpt.evidence)
                              .str() +
                              "\n");
}

OptStageCheckpoint read_opt_checkpoint(const std::filesystem::path& path) {
  const util::JsonValue doc = read_json_file(path);
  OptStageCheckpoint ckpt;
  ckpt.ifc = checkpoint_from_json(doc.at("if"));
  ckpt.sims = doc.at("sims").as_size();
  ckpt.stats = sim_stats_from_json(doc.at("stats"));
  ckpt.cache_hits = doc.at("cache_hits").as_size();
  ckpt.cache_misses = doc.at("cache_misses").as_size();
  ckpt.wall_ms = doc.at("wall_ms").as_double();
  ckpt.evidence = doc.at("evidence").as_double();
  return ckpt;
}

void remove_if_exists(const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

}  // namespace

// ------------------------------------------------------------- coarse --

void CoarseSearchStage::run(StageContext& ctx) {
  const FlowConfig& config = *ctx.config;
  const auto ranked = coarse_search(
      *ctx.target, *ctx.before,
      std::max<std::size_t>(1, config.coarse_best_templates));
  // Resolve the ranked names to template objects and merge their
  // parameters into one seed template (paper §IV-B: "find the best n
  // test-templates that hit these events. The parameters in these
  // test-templates are selected to be the ones used in the fine-grained
  // search."). On a name clash the higher-ranked template wins.
  tgen::TestTemplate seed;
  std::vector<std::string> merged_names;
  for (const auto& candidate : ranked) {
    for (const auto& tmpl : ctx.suite_templates) {
      if (tmpl.name() != candidate.name) continue;
      merged_names.push_back(tmpl.name());
      for (const auto& param : tmpl.parameters()) {
        if (!seed.contains(parameter_name(param))) seed.add(param);
      }
      break;
    }
  }
  if (merged_names.empty()) {
    throw util::NotFoundError(
        "coarse search: none of the ranked templates ('" + ranked.front().name +
        "', ...) resolve to a known template object");
  }
  seed.set_name(util::join(merged_names, "+"));
  util::log_info("coarse search selected template(s) '", seed.name(),
                 "' (top score ", ranked.front().score, ")");
  if (config.trace != nullptr) {
    // best-k margin: how far ahead of the k-th ranked template the
    // winner is — a small margin means the coarse search was ambiguous.
    config.trace->emit(util::JsonObject{}
                            .add("event", "coarse_search")
                            .add("seed_template", seed.name())
                            .add("merged_templates", merged_names.size())
                            .add("templates_ranked", ranked.size())
                            .add("top_score", ranked.front().score)
                            .add("kth_score", ranked.back().score)
                            .add("margin",
                                 ranked.front().score - ranked.back().score));
  }
  ctx.seed_template = std::move(seed);
}

void CoarseSearchStage::save(StageContext& ctx) const {
  tgen::save_template(ctx.session->artifact_path("coarse.seed_template.tmpl"),
                      ctx.seed_template);
}

void CoarseSearchStage::load(StageContext& ctx) const {
  ctx.seed_template = tgen::load_template(
      ctx.session->artifact_path("coarse.seed_template.tmpl"));
}

// -------------------------------------------------------- skeletonize --

void SkeletonizeStage::run(StageContext& ctx) {
  const FlowConfig& config = *ctx.config;
  FlowResult& result = *ctx.result;
  obs::Span skel_span = obs::make_span(config.trace, "skeletonize");
  obs::PhaseScope skel_phase("skeletonize");
  const cdg::Skeletonizer skeletonizer(config.skeletonizer);
  result.skeleton = skeletonizer.skeletonize(ctx.seed_template);
  skel_phase.end();
  skel_span.fields().add("marks", result.skeleton.mark_count());
  skel_span.end();
  util::log_info("skeletonized '", ctx.seed_template.name(), "' -> ",
                 result.skeleton.mark_count(), " marks");
  if (config.trace != nullptr) {
    config.trace->emit(util::JsonObject{}
                            .add("event", "flow_start")
                            .add("seed_template", ctx.seed_template.name())
                            .add("skeleton_marks", result.skeleton.mark_count())
                            .add("before_sims", result.before.sims));
  }
}

void SkeletonizeStage::save(StageContext& ctx) const {
  tgen::save_skeleton(ctx.session->artifact_path("skeleton.skel"),
                      ctx.result->skeleton);
}

void SkeletonizeStage::load(StageContext& ctx) const {
  ctx.result->skeleton =
      tgen::load_skeleton(ctx.session->artifact_path("skeleton.skel"));
}

// ----------------------------------------------------------- sampling --

void SampleStage::run(StageContext& ctx) {
  const FlowConfig& config = *ctx.config;
  FlowResult& result = *ctx.result;
  const auto sampling_start = Clock::now();
  obs::Span sampling_span = obs::make_span(config.trace, "sampling");
  obs::PhaseScope sampling_scope("sampling");
  cdg::RandomSampleOptions sample_options;
  sample_options.templates = config.sample_templates;
  sample_options.sims_per_template = config.sample_sims;
  sample_options.seed = config.seed ^ 0x5A4D91E5ULL;
  result.sampling = cdg::random_sample(*ctx.duv, *ctx.farm, result.skeleton,
                                       *ctx.target, sample_options);
  result.sampling_phase = {"Sampling phase", result.sampling.simulations,
                           result.sampling.combined};
  result.sampling_phase.wall_ms = ms_since(sampling_start);
  sampling_scope.end();
  sampling_span.fields()
      .add("sims", result.sampling_phase.sims)
      .add("best_value", result.sampling.best().target_value);
  sampling_span.end();
  util::log_info("sampling phase: best target value ",
                 result.sampling.best().target_value, " over ",
                 result.sampling.simulations, " sims");
  trace_phase(config.trace, "sampling", result.sampling_phase,
              util::JsonObject{}
                  .add("templates", result.sampling.samples.size())
                  .add("best_value", result.sampling.best().target_value));
}

void SampleStage::save(StageContext& ctx) const {
  atomic_write_file(
      ctx.session->artifact_path("sampling.json"),
      util::JsonObject{}
          .add_raw("sampling", to_json(ctx.result->sampling))
          .add_raw("phase", to_json(ctx.result->sampling_phase))
          .str() +
          "\n");
}

void SampleStage::load(StageContext& ctx) const {
  const util::JsonValue doc =
      read_json_file(ctx.session->artifact_path("sampling.json"));
  ctx.result->sampling = sampling_from_json(doc.at("sampling"));
  ctx.result->sampling_phase = phase_outcome_from_json(doc.at("phase"));
}

// ------------------------------------------------------- optimization --

void OptimizeStage::run(StageContext& ctx) {
  const FlowConfig& config = *ctx.config;
  FlowResult& result = *ctx.result;
  ctx.opt_start = Clock::now();
  ctx.opt_span.emplace(obs::make_span(config.trace, "optimization"));
  ctx.opt_scope.emplace("optimization");
  const cdg::EvalCacheConfig cache_config{.enabled = config.eval_cache,
                                          .capacity = 1024};
  cdg::CdgObjective objective(*ctx.duv, *ctx.farm, result.skeleton,
                              *ctx.target, config.opt_sims_per_point,
                              cache_config, config.trace);
  opt::ImplicitFilteringOptions if_options = base_if_options(config);
  if_options.seed = config.seed ^ seed_mix_;
  if_options.trace_label = "optimization";

  // Cost prefix from an interrupted earlier attempt at this stage (zero
  // on a fresh run): the resumed totals must look uninterrupted.
  OptStageCheckpoint prefix;
  const std::filesystem::path ckpt_path =
      ctx.session != nullptr
          ? ctx.session->artifact_path("optimization.ckpt.json")
          : std::filesystem::path{};
  if (ctx.session != nullptr) {
    if (std::filesystem::exists(ckpt_path)) {
      prefix = read_opt_checkpoint(ckpt_path);
      if_options.resume = &prefix.ifc;
      ctx.opt_wall_base = prefix.wall_ms;
      util::log_info("optimization: resuming from checkpoint at iteration ",
                     prefix.ifc.next_iteration, " (", prefix.sims,
                     " sims already spent)");
    }
    if_options.on_checkpoint = [&](const opt::IfCheckpoint& ifc) {
      OptStageCheckpoint ckpt;
      ckpt.ifc = ifc;
      ckpt.sims = prefix.sims + objective.simulations();
      ckpt.stats = merged(prefix.stats, objective.combined());
      ckpt.cache_hits = prefix.cache_hits + objective.cache_hits();
      ckpt.cache_misses = prefix.cache_misses + objective.cache_misses();
      ckpt.wall_ms = ctx.opt_wall_base + ms_since(*ctx.opt_start);
      write_opt_checkpoint(ckpt_path, ckpt);
    };
  }

  result.optimization = opt::implicit_filtering(
      objective, result.sampling.best().point, if_options);
  result.optimization_phase = {"Optimization phase",
                               prefix.sims + objective.simulations(),
                               merged(prefix.stats, objective.combined())};
  result.optimization_phase.wall_ms =
      ctx.opt_wall_base + ms_since(*ctx.opt_start);
  result.eval_cache_hits = prefix.cache_hits + objective.cache_hits();
  result.eval_cache_misses = prefix.cache_misses + objective.cache_misses();
  util::log_info("optimization: ", result.optimization.trace.size(),
                 " iterations, best value ", result.optimization.best_value,
                 " (", to_string(result.optimization.reason), ")");
  ctx.best_point = result.optimization.best_point;
  // ctx.opt_wall_base stays at the checkpoint prefix: the refine stage
  // re-measures from ctx.opt_start, which covers this stage's run too.
}

void OptimizeStage::save(StageContext& ctx) const {
  const FlowResult& result = *ctx.result;
  atomic_write_file(
      ctx.session->artifact_path("optimization.json"),
      util::JsonObject{}
          .add_raw("optimization", to_json(result.optimization))
          .add_raw("phase", to_json(result.optimization_phase))
          .add("cache_hits", result.eval_cache_hits)
          .add("cache_misses", result.eval_cache_misses)
          .str() +
          "\n");
  remove_if_exists(ctx.session->artifact_path("optimization.ckpt.json"));
}

void OptimizeStage::load(StageContext& ctx) const {
  const util::JsonValue doc =
      read_json_file(ctx.session->artifact_path("optimization.json"));
  FlowResult& result = *ctx.result;
  result.optimization = opt_result_from_json(doc.at("optimization"));
  result.optimization_phase = phase_outcome_from_json(doc.at("phase"));
  result.eval_cache_hits = doc.at("cache_hits").as_size();
  result.eval_cache_misses = doc.at("cache_misses").as_size();
  ctx.best_point = result.optimization.best_point;
  ctx.opt_wall_base = result.optimization_phase.wall_ms;
}

// --------------------------------------------------------- refinement --

void RefineStage::run(StageContext& ctx) {
  const FlowConfig& config = *ctx.config;
  FlowResult& result = *ctx.result;
  // The paper's optimization phase covers implicit filtering and this
  // refinement; when the optimize stage ran in this process its span /
  // phase scope / clock are still open here. After a resume that
  // restored the optimize stage from its artifact they are not — open
  // fresh ones (the restored wall time rides in ctx.opt_wall_base).
  if (!ctx.opt_start.has_value()) {
    ctx.opt_start = Clock::now();
    ctx.opt_span.emplace(obs::make_span(config.trace, "optimization"));
    ctx.opt_scope.emplace("optimization");
  }
  const auto refine_start = *ctx.opt_start;

  if (config.refine_with_real_target && !ctx.target->targets().empty()) {
    const neighbors::ApproximatedTarget& target = *ctx.target;
    const cdg::EvalCacheConfig cache_config{.enabled = config.eval_cache,
                                            .capacity = 1024};
    const std::filesystem::path ckpt_path =
        ctx.session != nullptr
            ? ctx.session->artifact_path("refinement.ckpt.json")
            : std::filesystem::path{};
    OptStageCheckpoint prefix;
    bool mid_refine_resume = false;
    if (ctx.session != nullptr && std::filesystem::exists(ckpt_path)) {
      // The crash happened inside the refinement optimizer: the probe
      // already ran and found evidence, so skip straight to resuming it.
      prefix = read_opt_checkpoint(ckpt_path);
      mid_refine_resume = true;
      result.optimization_phase.sims = prefix.sims;
      result.optimization_phase.stats = prefix.stats;
      result.eval_cache_hits = prefix.cache_hits;
      result.eval_cache_misses = prefix.cache_misses;
      ctx.opt_wall_base = prefix.wall_ms;
      util::log_info("refinement: resuming from checkpoint at iteration ",
                     prefix.ifc.next_iteration);
    }

    double evidence = prefix.evidence;
    if (!mid_refine_resume) {
      // Probe the optimized point for real-target evidence.
      const tgen::TestTemplate probe_tmpl =
          result.skeleton.instantiate("cdg_refine_probe", ctx.best_point);
      const coverage::SimStats probe =
          ctx.farm->run(*ctx.duv, probe_tmpl, config.opt_sims_per_point,
                        config.seed ^ 0x5EF1A37EULL);
      result.optimization_phase.sims += probe.sims();
      result.optimization_phase.stats.merge(probe);
      evidence = target.real_value(probe);
    }
    if (mid_refine_resume || evidence >= config.refine_threshold) {
      // The real objective: the target events themselves, unit weights.
      std::vector<tac::WeightedEvent> raw;
      raw.reserve(target.targets().size());
      for (const auto event : target.targets()) raw.push_back({event, 1.0});
      const neighbors::ApproximatedTarget real_target(target.targets(),
                                                      std::move(raw));
      cdg::CdgObjective refine_objective(*ctx.duv, *ctx.farm, result.skeleton,
                                         real_target, config.opt_sims_per_point,
                                         cache_config, config.trace);
      opt::ImplicitFilteringOptions if_options = base_if_options(config);
      if_options.max_iterations = config.refine_max_iterations;
      if_options.seed = config.seed ^ 0x5EF15EEDULL;
      if_options.trace_label = "refinement";
      // The phase totals at the moment refinement starts — every
      // checkpoint reports these plus the refine objective's own books.
      const std::size_t base_sims = result.optimization_phase.sims;
      const coverage::SimStats base_stats = result.optimization_phase.stats;
      const std::size_t base_hits = result.eval_cache_hits;
      const std::size_t base_misses = result.eval_cache_misses;
      if (mid_refine_resume) if_options.resume = &prefix.ifc;
      if (ctx.session != nullptr) {
        if_options.on_checkpoint = [&](const opt::IfCheckpoint& ifc) {
          OptStageCheckpoint ckpt;
          ckpt.ifc = ifc;
          ckpt.sims = base_sims + refine_objective.simulations();
          ckpt.stats = merged(base_stats, refine_objective.combined());
          ckpt.cache_hits = base_hits + refine_objective.cache_hits();
          ckpt.cache_misses = base_misses + refine_objective.cache_misses();
          ckpt.wall_ms = ctx.opt_wall_base + ms_since(refine_start);
          ckpt.evidence = evidence;
          write_opt_checkpoint(ckpt_path, ckpt);
        };
      }
      result.refinement = opt::implicit_filtering(refine_objective,
                                                  ctx.best_point, if_options);
      result.optimization_phase.sims =
          base_sims + refine_objective.simulations();
      result.optimization_phase.stats =
          merged(base_stats, refine_objective.combined());
      result.eval_cache_hits = base_hits + refine_objective.cache_hits();
      result.eval_cache_misses = base_misses + refine_objective.cache_misses();
      if (result.refinement->best_value > evidence) {
        ctx.best_point = result.refinement->best_point;
      }
      util::log_info("refinement: real-objective best ",
                     result.refinement->best_value, " (evidence was ",
                     evidence, ")");
    } else {
      util::log_info("refinement skipped: real-target evidence ", evidence,
                     " below threshold ", config.refine_threshold);
    }
  }

  result.optimization_phase.wall_ms = ctx.opt_wall_base + ms_since(refine_start);
  if (ctx.opt_scope.has_value()) ctx.opt_scope->end();
  if (ctx.opt_span.has_value()) {
    ctx.opt_span->fields()
        .add("sims", result.optimization_phase.sims)
        .add("iterations", result.optimization.trace.size())
        .add("best_value", result.optimization.best_value);
    ctx.opt_span->end();
  }
  trace_phase(config.trace, "optimization", result.optimization_phase,
              util::JsonObject{}
                  .add("iterations", result.optimization.trace.size())
                  .add("best_value", result.optimization.best_value)
                  .add("refined", result.refinement.has_value()));
  ctx.opt_span.reset();
  ctx.opt_scope.reset();
  ctx.opt_start.reset();
}

void RefineStage::save(StageContext& ctx) const {
  const FlowResult& result = *ctx.result;
  util::JsonObject doc;
  doc.add("refined", result.refinement.has_value());
  if (result.refinement.has_value()) {
    doc.add_raw("refinement", to_json(*result.refinement));
  }
  doc.add_raw("phase", to_json(result.optimization_phase))
      .add("cache_hits", result.eval_cache_hits)
      .add("cache_misses", result.eval_cache_misses)
      .add_raw("best_point", json_double_array(ctx.best_point));
  atomic_write_file(ctx.session->artifact_path("refinement.json"),
                    doc.str() + "\n");
  remove_if_exists(ctx.session->artifact_path("refinement.ckpt.json"));
}

void RefineStage::load(StageContext& ctx) const {
  const util::JsonValue doc =
      read_json_file(ctx.session->artifact_path("refinement.json"));
  FlowResult& result = *ctx.result;
  if (doc.at("refined").as_bool()) {
    result.refinement = opt_result_from_json(doc.at("refinement"));
  } else {
    result.refinement.reset();
  }
  result.optimization_phase = phase_outcome_from_json(doc.at("phase"));
  result.eval_cache_hits = doc.at("cache_hits").as_size();
  result.eval_cache_misses = doc.at("cache_misses").as_size();
  ctx.best_point = double_array_from_json(doc.at("best_point"));
  // The optimize stage's shared-telemetry handles are only open when it
  // ran in this process; a restored refine stage must not leave them
  // around for the harvest stage.
  ctx.opt_span.reset();
  ctx.opt_scope.reset();
  ctx.opt_start.reset();
}

// ------------------------------------------------------------ harvest --

void HarvestStage::run(StageContext& ctx) {
  const FlowConfig& config = *ctx.config;
  FlowResult& result = *ctx.result;
  const auto harvest_start = Clock::now();
  obs::Span harvest_span = obs::make_span(config.trace, "harvest");
  obs::PhaseScope harvest_scope("harvest");
  result.best_template = result.skeleton.instantiate(
      ctx.seed_template.name() + instance_suffix_, ctx.best_point);
  result.harvest_phase.name = "Running best test";
  if (config.harvest_sims > 0) {
    result.harvest_phase.stats =
        ctx.farm->run(*ctx.duv, result.best_template, config.harvest_sims,
                      config.seed ^ seed_mix_);
    result.harvest_phase.sims = config.harvest_sims;
    util::log_info("harvest: real target value ",
                   ctx.target->real_value(result.harvest_phase.stats),
                   " over ", config.harvest_sims, " sims");
  } else {
    result.harvest_phase.stats = coverage::SimStats(ctx.duv->space().size());
  }
  result.harvest_phase.wall_ms = ms_since(harvest_start);
  harvest_scope.end();
  harvest_span.fields().add("sims", result.harvest_phase.sims);
  harvest_span.end();
  trace_phase(config.trace, "harvest", result.harvest_phase,
              util::JsonObject{}.add(
                  "real_value", result.harvest_phase.stats.sims() > 0
                                    ? ctx.target->real_value(
                                          result.harvest_phase.stats)
                                    : 0.0));
}

void HarvestStage::save(StageContext& ctx) const {
  tgen::save_template(ctx.session->artifact_path("best_template.tmpl"),
                      ctx.result->best_template);
  atomic_write_file(
      ctx.session->artifact_path("harvest.json"),
      util::JsonObject{}
          .add_raw("phase", to_json(ctx.result->harvest_phase))
          .str() +
          "\n");
}

void HarvestStage::load(StageContext& ctx) const {
  ctx.result->best_template =
      tgen::load_template(ctx.session->artifact_path("best_template.tmpl"));
  const util::JsonValue doc =
      read_json_file(ctx.session->artifact_path("harvest.json"));
  ctx.result->harvest_phase = phase_outcome_from_json(doc.at("phase"));
}

}  // namespace ascdg::flow
