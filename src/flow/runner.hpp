// The CDG-Runner (paper Fig. 2): drives the AS-CDG flow through the
// stage pipeline.
//
//   coarse search (TAC)  ->  Skeletonizer  ->  random sample
//        ->  implicit-filtering optimization  ->  harvest best template
//
// The runner "creates test-templates that fit the skeleton according to
// the specific task it executes (e.g., random sample, optimize), sends
// the templates to the batch environment for simulation, collects the
// coverage data, analyzes the results, and decides on the next step."
//
// Since the stage-pipeline refactor the runner is a thin driver: it
// assembles a flow::Pipeline of stages, optionally attaches a durable
// flow::Session (FlowConfig::session_dir / resume), and keeps the
// flow-level bookkeeping the stages share (the flow span, first-hit
// telemetry, the final trace epilogue).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "exec/backend.hpp"
#include "coverage/repository.hpp"
#include "duv/duv.hpp"
#include "flow/session.hpp"
#include "flow/types.hpp"
#include "neighbors/neighbors.hpp"
#include "tac/tac.hpp"
#include "tgen/test_template.hpp"

namespace ascdg::flow {

class CdgRunner {
 public:
  /// `duv` and `farm` must outlive the runner.
  CdgRunner(const duv::Duv& duv, exec::Backend& farm, FlowConfig config);

  /// Full flow. `before` is the unit's existing coverage repository (the
  /// "Before CDG" data); the coarse search mines it through TAC for the
  /// seed template, which must be one of the repository's template names
  /// resolvable in `suite_templates`. Throws util::NotFoundError when no
  /// template in the repository hits any neighbor of the target.
  [[nodiscard]] FlowResult run(const neighbors::ApproximatedTarget& target,
                               const coverage::CoverageRepository& before,
                               std::span<const tgen::TestTemplate> suite_templates);

  /// Flow from an explicit seed template, skipping the coarse search.
  /// `before_stats` (optional) only fills the report's Before column.
  [[nodiscard]] FlowResult run_from_template(
      const neighbors::ApproximatedTarget& target,
      const tgen::TestTemplate& seed_template,
      const coverage::SimStats* before_stats = nullptr,
      std::size_t before_sims = 0);

  [[nodiscard]] const FlowConfig& config() const noexcept { return config_; }

  /// Manifest snapshot of the durable session the last run used;
  /// nullopt for an ephemeral (un-sessioned) run.
  [[nodiscard]] const std::optional<SessionSummary>& session_summary()
      const noexcept {
    return session_summary_;
  }

 private:
  /// The flow proper: skeletonize -> sample -> optimize -> refine ->
  /// harvest, plus the flow-level telemetry epilogue.
  [[nodiscard]] FlowResult execute(const neighbors::ApproximatedTarget& target,
                                   const tgen::TestTemplate& seed_template,
                                   const coverage::SimStats* before_stats,
                                   std::size_t before_sims, Session* session);

  /// Creates or re-opens the configured session (nullopt when
  /// FlowConfig::session_dir is empty).
  [[nodiscard]] std::optional<Session> prepare_session(
      std::span<const std::string> stage_names, std::string_view context_key);

  const duv::Duv* duv_;
  exec::Backend* farm_;
  FlowConfig config_;
  std::optional<SessionSummary> session_summary_;
};

/// The coarse-grained search in isolation: ranks the repository's
/// templates by their TAC score on the approximated target and returns
/// the best `n` names. Throws util::NotFoundError when nothing scores.
[[nodiscard]] std::vector<tac::TemplateScore> coarse_search(
    const neighbors::ApproximatedTarget& target,
    const coverage::CoverageRepository& before, std::size_t n);

}  // namespace ascdg::flow
