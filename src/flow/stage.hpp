// The Stage interface of the flow engine.
//
// The old monolithic CdgRunner::run_from_template is decomposed into
// stages (coarse search, skeletonize, sample, optimize, refine,
// harvest), each owning three responsibilities:
//
//   run()  — do the work: simulate, mutate the shared StageContext, and
//            emit the stage's spans / trace events / log lines exactly
//            as the monolith did (telemetry parity is load-bearing:
//            tests reconcile per-phase sims against the farm's books).
//   save() — persist the stage's output as a session artifact
//            (atomic write; only called when a session is attached).
//   load() — reconstruct the stage's output from its artifact instead
//            of re-simulating (resume path; loaded stages are silent —
//            they cost zero simulations and emit no telemetry).
#pragma once

#include <chrono>
#include <optional>
#include <string_view>
#include <vector>

#include "exec/backend.hpp"
#include "coverage/repository.hpp"
#include "duv/duv.hpp"
#include "flow/session.hpp"
#include "flow/types.hpp"
#include "neighbors/neighbors.hpp"
#include "obs/phase_scope.hpp"
#include "obs/trace.hpp"
#include "tgen/test_template.hpp"

namespace ascdg::flow {

/// Everything a stage can read or produce. One context instance lives
/// for the duration of a pipeline execution; stages communicate only
/// through it (and through the FlowResult it points at).
struct StageContext {
  using Clock = std::chrono::steady_clock;

  const duv::Duv* duv = nullptr;
  exec::Backend* farm = nullptr;
  const FlowConfig* config = nullptr;
  const neighbors::ApproximatedTarget* target = nullptr;
  /// nullptr for an ephemeral (un-sessioned) run.
  Session* session = nullptr;
  FlowResult* result = nullptr;

  // Coarse-search inputs (only set by CdgRunner::run).
  const coverage::CoverageRepository* before = nullptr;
  std::span<const tgen::TestTemplate> suite_templates{};

  /// The seed template the flow skeletonizes — produced by the coarse
  /// stage or supplied by run_from_template.
  tgen::TestTemplate seed_template;

  /// Hand-off from optimize through refine to harvest: the point the
  /// best template is instantiated from.
  std::vector<double> best_point;

  // The paper's "optimization phase" covers implicit filtering AND the
  // optional real-objective refinement, so its span / phase scope /
  // wall clock open in OptimizeStage and close in RefineStage. On a
  // resume that skips the optimize stage these stay empty and
  // RefineStage opens its own scope; `opt_wall_base` then carries the
  // already-spent wall time loaded from the optimize artifact.
  std::optional<obs::Span> opt_span;
  std::optional<obs::PhaseScope> opt_scope;
  std::optional<Clock::time_point> opt_start;
  double opt_wall_base = 0.0;
};

class Stage {
 public:
  virtual ~Stage() = default;

  /// Stable stage name — the manifest key and artifact-file prefix.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  virtual void run(StageContext& ctx) = 0;
  virtual void save(StageContext& ctx) const = 0;
  virtual void load(StageContext& ctx) const = 0;
};

}  // namespace ascdg::flow
