// Concrete pipeline stages. Each reproduces one section of the old
// monolithic CdgRunner::run / run_from_template verbatim — same seed
// mixes, same spans and trace events, same log lines — so the refactor
// is observationally invisible to an un-sessioned run.
//
// Optimize and Harvest take their seed mix (and the harvest its
// instance-name suffix) as constructor parameters because the
// multi-target campaign driver runs them per target with per-target
// mixes (config.seed ^ (base + t)).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "flow/stage.hpp"

namespace ascdg::flow {

/// §IV-B: TAC-ranks the before-CDG repository's templates against the
/// approximated target and merges the best n into ctx.seed_template.
/// Zero simulations; the artifact is the merged seed template itself.
class CoarseSearchStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "coarse";
  }
  void run(StageContext& ctx) override;
  void save(StageContext& ctx) const override;
  void load(StageContext& ctx) const override;
};

/// §IV-C: marks the seed template's tunable settings. Also emits the
/// flow_start trace event (the monolith emitted it right after
/// skeletonizing, once the mark count was known).
class SkeletonizeStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "skeletonize";
  }
  void run(StageContext& ctx) override;
  void save(StageContext& ctx) const override;
  void load(StageContext& ctx) const override;
};

/// §IV-D: the random-sampling phase.
class SampleStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sampling";
  }
  void run(StageContext& ctx) override;
  void save(StageContext& ctx) const override;
  void load(StageContext& ctx) const override;
};

/// §IV-E: implicit filtering over the skeleton's weight space. With a
/// session attached the optimizer checkpoint (full IfCheckpoint + the
/// stage's partial sims/stats) is written atomically after every
/// iteration, and an interrupted stage resumes mid-optimization with a
/// bit-identical trajectory.
class OptimizeStage final : public Stage {
 public:
  explicit OptimizeStage(std::uint64_t seed_mix = 0x0B71417EULL)
      : seed_mix_(seed_mix) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "optimization";
  }
  void run(StageContext& ctx) override;
  void save(StageContext& ctx) const override;
  void load(StageContext& ctx) const override;

 private:
  std::uint64_t seed_mix_;
};

/// §IV-E refinement. Always present in the pipeline (so the session's
/// stage list is config-independent); when refinement is disabled or
/// evidence is missing it only closes the optimization-phase telemetry
/// that OptimizeStage opened and emits the "optimization" phase event.
class RefineStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "refinement";
  }
  void run(StageContext& ctx) override;
  void save(StageContext& ctx) const override;
  void load(StageContext& ctx) const override;
};

/// §IV-F: instantiates the best point and runs the harvest budget.
class HarvestStage final : public Stage {
 public:
  explicit HarvestStage(std::uint64_t seed_mix = 0x4A12E57EDULL,
                        std::string instance_suffix = "_cdg_best")
      : seed_mix_(seed_mix), instance_suffix_(std::move(instance_suffix)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "harvest";
  }
  void run(StageContext& ctx) override;
  void save(StageContext& ctx) const override;
  void load(StageContext& ctx) const override;

 private:
  std::uint64_t seed_mix_;
  std::string instance_suffix_;
};

}  // namespace ascdg::flow
