#include "flow/runner.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <utility>

#include "flow/pipeline.hpp"
#include "flow/stages.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_scope.hpp"
#include "obs/resource.hpp"
#include "obs/run_state.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/jsonl.hpp"
#include "util/log.hpp"

namespace ascdg::flow {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Per-target-event closure telemetry: the first flow phase whose
/// cumulative coverage hit each real target event.
std::vector<FirstHit> compute_first_hits(
    const neighbors::ApproximatedTarget& target, const FlowResult& result) {
  std::vector<FirstHit> out;
  out.reserve(target.targets().size());
  const std::array<std::pair<const char*, const coverage::SimStats*>, 4>
      phases{{{"before", &result.before.stats},
              {"sampling", &result.sampling_phase.stats},
              {"optimization", &result.optimization_phase.stats},
              {"harvest", &result.harvest_phase.stats}}};
  for (const auto event : target.targets()) {
    const char* first = "never";
    for (const auto& [name, stats] : phases) {
      if (stats->sims() != 0 && event.value < stats->event_count() &&
          stats->hits(event) > 0) {
        first = name;
        break;
      }
    }
    out.push_back({event, first});
  }
  return out;
}

/// The session stage lists of the two entry points. The manifest
/// records the full list so a resume can verify it is replaying the
/// same pipeline shape it left behind.
const std::vector<std::string> kRunStages = {
    "coarse",       "skeletonize", "sampling",
    "optimization", "refinement",  "harvest"};
const std::vector<std::string> kTemplateStages = {
    "skeletonize", "sampling", "optimization", "refinement", "harvest"};

}  // namespace

CdgRunner::CdgRunner(const duv::Duv& duv, exec::Backend& farm,
                     FlowConfig config)
    : duv_(&duv), farm_(&farm), config_(std::move(config)) {
  if (config_.sample_templates == 0 || config_.sample_sims == 0) {
    throw util::ConfigError("flow config: sampling budget must be non-zero");
  }
  if (config_.opt_directions == 0 || config_.opt_sims_per_point == 0) {
    throw util::ConfigError("flow config: optimization budget must be non-zero");
  }
  if (config_.resume && config_.session_dir.empty()) {
    throw util::ConfigError("flow config: resume requires a session directory");
  }
}

std::vector<tac::TemplateScore> coarse_search(
    const neighbors::ApproximatedTarget& target,
    const coverage::CoverageRepository& before, std::size_t n) {
  const tac::Tac tac_view(before);
  auto ranked = tac_view.best_templates(target.events(), n);
  if (ranked.empty()) {
    throw util::NotFoundError(
        "coarse search: no existing template hits any neighbor of the target");
  }
  return ranked;
}

std::optional<Session> CdgRunner::prepare_session(
    std::span<const std::string> stage_names, std::string_view context_key) {
  if (config_.session_dir.empty()) return std::nullopt;
  const std::uint64_t fingerprint =
      config_fingerprint(config_, context_key);
  if (config_.resume) {
    Session session =
        Session::open(config_.session_dir, fingerprint, stage_names);
    obs::run_state().set_resumed_from(session.resumed_from());
    util::log_info("session: resumed '", config_.session_dir, "' from '",
                   session.resumed_from(), "' (resume #", session.resumes(),
                   ")");
    return session;
  }
  return Session::create(config_.session_dir, fingerprint, config_.seed,
                         stage_names);
}

FlowResult CdgRunner::run(const neighbors::ApproximatedTarget& target,
                          const coverage::CoverageRepository& before,
                          std::span<const tgen::TestTemplate> suite_templates) {
  std::optional<Session> session = prepare_session(kRunStages, "run");

  // Coarse selection runs through the pipeline too, so a session
  // checkpoints (and a resume skips) the template-merging work.
  FlowResult scratch;
  StageContext selection_ctx;
  selection_ctx.duv = duv_;
  selection_ctx.farm = farm_;
  selection_ctx.config = &config_;
  selection_ctx.target = &target;
  selection_ctx.session = session.has_value() ? &*session : nullptr;
  selection_ctx.result = &scratch;
  selection_ctx.before = &before;
  selection_ctx.suite_templates = suite_templates;
  Pipeline selection;
  selection.add(std::make_unique<CoarseSearchStage>());
  selection.execute(selection_ctx);

  const coverage::SimStats before_total = before.total();
  if (config_.expand_target_by_correlation) {
    // Deterministic given the repository and config, so a resumed run
    // recomputes the same expansion the interrupted run used.
    const neighbors::CorrelationExpansion expansion(
        before, config_.correlation_min_similarity);
    const auto expanded = expansion.expand(target);
    util::log_info("correlation expansion: ", target.events().size(), " -> ",
                   expanded.events().size(), " objective events");
    return execute(expanded, selection_ctx.seed_template, &before_total,
                   before.total_sims(),
                   session.has_value() ? &*session : nullptr);
  }
  return execute(target, selection_ctx.seed_template, &before_total,
                 before.total_sims(),
                 session.has_value() ? &*session : nullptr);
}

FlowResult CdgRunner::run_from_template(
    const neighbors::ApproximatedTarget& target,
    const tgen::TestTemplate& seed_template,
    const coverage::SimStats* before_stats, std::size_t before_sims) {
  std::optional<Session> session = prepare_session(
      kTemplateStages, "template:" + std::string(seed_template.name()));
  return execute(target, seed_template, before_stats, before_sims,
                 session.has_value() ? &*session : nullptr);
}

FlowResult CdgRunner::execute(const neighbors::ApproximatedTarget& target,
                              const tgen::TestTemplate& seed_template,
                              const coverage::SimStats* before_stats,
                              std::size_t before_sims, Session* session) {
  FlowResult result;
  result.seed_template = seed_template.name();

  result.before.name = "Before CDG";
  if (before_stats != nullptr) {
    result.before.stats = *before_stats;
    result.before.sims = before_sims != 0 ? before_sims : before_stats->sims();
  } else {
    result.before.stats = coverage::SimStats(duv_->space().size());
  }

  const auto flow_start = Clock::now();
  obs::run_state().start_flow(seed_template.name());
  obs::PhaseScope flow_scope("flow");
  obs::Span flow_span = obs::make_span(config_.trace, "flow");
  flow_span.fields().add("seed_template", seed_template.name());

  StageContext ctx;
  ctx.duv = duv_;
  ctx.farm = farm_;
  ctx.config = &config_;
  ctx.target = &target;
  ctx.session = session;
  ctx.result = &result;
  ctx.seed_template = seed_template;

  Pipeline flow;
  flow.add(std::make_unique<SkeletonizeStage>())
      .add(std::make_unique<SampleStage>())
      .add(std::make_unique<OptimizeStage>())
      .add(std::make_unique<RefineStage>())
      .add(std::make_unique<HarvestStage>());
  flow.execute(ctx);

  // --- Per-event closure telemetry -----------------------------------------
  result.first_hits = compute_first_hits(target, result);
  std::size_t events_hit = 0;
  for (const auto& hit : result.first_hits) {
    if (hit.phase != "never") ++events_hit;
    if (config_.trace != nullptr) {
      config_.trace->emit(util::JsonObject{}
                              .add("event", "first_hit")
                              .add("event_id", hit.event.value)
                              .add("phase", hit.phase));
    }
  }
  if (!result.first_hits.empty()) {
    obs::Registry& reg = obs::registry();
    reg.gauge("ascdg_flow_target_events_hit").set(
        static_cast<std::int64_t>(events_hit));
    reg.gauge("ascdg_flow_target_events_remaining")
        .set(static_cast<std::int64_t>(result.first_hits.size() - events_hit));
    obs::run_state().set_coverage(events_hit,
                                  result.first_hits.size() - events_hit);
  }
  obs::update_resource_gauges(obs::registry());

  flow_span.fields()
      .add("flow_sims", result.flow_sims())
      .add("target_events", result.first_hits.size())
      .add("target_events_hit", events_hit);
  flow_span.end();

  if (config_.trace != nullptr) {
    const batch::TelemetrySnapshot farm_stats = farm_->telemetry();
    config_.trace->emit(
        util::JsonObject{}
            .add("event", "flow_end")
            .add("flow_sims", result.flow_sims())
            .add("wall_ms", ms_since(flow_start))
            .add("target_events", result.first_hits.size())
            .add("target_events_hit", events_hit)
            .add("farm_total_sims", farm_stats.simulations)
            .add("farm_chunks", farm_stats.chunks)
            .add("farm_steals", farm_stats.steals)
            .add("farm_max_queue_depth", farm_stats.max_queue_depth)
            .add("farm_mean_chunk_us", farm_stats.mean_chunk_us()));
  }

  if (session != nullptr) {
    session_summary_ = session->summary();
  } else {
    session_summary_.reset();
  }
  return result;
}

}  // namespace ascdg::flow
