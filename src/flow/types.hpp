// Flow-level configuration and result types, shared by every driver of
// the stage pipeline (single-target CdgRunner, the multi-target
// campaign driver, the CLI). Moved here from cdg/runner.hpp when the
// monolithic runner was decomposed into stages; ascdg::cdg re-exports
// the names for source compatibility.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "cdg/random_sample.hpp"
#include "cdg/skeletonizer.hpp"
#include "exec/backend.hpp"
#include "obs/trace.hpp"
#include "opt/implicit_filtering.hpp"
#include "tgen/skeleton.hpp"
#include "tgen/test_template.hpp"

namespace ascdg::flow {

struct FlowConfig {
  // Coarse-grained search (§IV-B).
  /// TAC best-n: the parameters of the n best-scoring existing templates
  /// are merged (higher rank wins name clashes) into the seed template
  /// that gets skeletonized.
  std::size_t coarse_best_templates = 3;

  // Skeletonizer (§IV-C).
  cdg::SkeletonizerOptions skeletonizer{};

  // Random-sampling phase (§IV-D).
  std::size_t sample_templates = 200;     ///< n
  std::size_t sample_sims = 100;          ///< N per template

  // Optimization phase (§IV-E).
  std::size_t opt_directions = 20;        ///< n directions per iteration
  std::size_t opt_sims_per_point = 200;   ///< N sims per point
  std::size_t opt_max_iterations = 7;
  double opt_initial_step = 0.4;
  /// Direction sampling for the stencil. Sparse (+-h on a random ~25%
  /// of the coordinates) is the default: template weight spaces are
  /// moderate-dimensional with weakly coupled coordinates, so targeted
  /// moves that leave most settings alone escape noisy plateaus far
  /// faster than unit-sphere or full-coordinate directions (see
  /// bench_ablation_hyper for the comparison).
  opt::DirectionMode opt_direction_mode = opt::DirectionMode::kSparse;
  /// See ImplicitFilteringOptions::halve_patience; 3 tolerates unlucky
  /// noisy rounds before shrinking the stencil.
  std::size_t opt_halve_patience = 3;
  double opt_min_step = 1e-3;
  bool opt_resample_center = true;
  std::optional<double> opt_target_value; ///< early-stop threshold
  /// Seeded evaluation cache for the optimization/refinement
  /// objectives: center resamples with a reused seed and revisited
  /// stencil points skip resimulation (values are bit-identical either
  /// way — only the simulation cost changes). CLI: --eval-cache=on|off.
  bool eval_cache = true;

  // Approximated-target expansion (§IV-A / the "Friends" idea [16]):
  // before the flow starts, pull in events whose per-template hit
  // profiles correlate with the target's known neighbors
  // (neighbors::CorrelationExpansion over the before-CDG repository).
  // Only applies to CdgRunner::run (which has the repository).
  bool expand_target_by_correlation = false;
  double correlation_min_similarity = 0.85;

  // Refinement (§IV-E): "Once there is good evidence for the target
  // event, we can repeat the process, this time with the real objective
  // function." When enabled, and the optimized template's summed
  // real-target hit rate reaches refine_threshold, a second implicit-
  // filtering run maximizes the real objective directly from the
  // optimization phase's best point.
  bool refine_with_real_target = false;
  double refine_threshold = 0.005;  ///< evidence needed to switch objectives
  std::size_t refine_max_iterations = 10;

  // Harvest (§IV-F).
  std::size_t harvest_sims = 10000;

  std::uint64_t seed = 2021;

  /// Execution backend the driver runs every simulation on (thread farm
  /// by default; forked worker processes via --backend=process[:N], see
  /// docs/backends.md). Like the telemetry knobs, the backend choice
  /// never changes results — backends are bit-identical by contract —
  /// so it is excluded from the session config fingerprint
  /// (flow/session.cpp): a session started on one backend may resume on
  /// another.
  exec::BackendConfig backend{};

  // Durable session (docs/sessions.md). When `session_dir` is
  // non-empty the flow checkpoints every stage boundary and every
  // optimizer iteration into that directory; with `resume` set it
  // restarts from the last completed checkpoint instead of
  // re-simulating. CLI: --session=DIR / --resume.
  std::string session_dir;
  bool resume = false;

  /// Optional JSONL run-trace sink (not owned; must outlive the run).
  /// When set, the runner emits flow_start / phase / flow_end events
  /// carrying each phase's simulation budget and wall latency, wraps
  /// the flow and each phase in obs spans (parent/child ids tie the
  /// events together), and streams the optimizer's per-iteration
  /// "opt_iter" convergence series — see docs/observability.md for the
  /// field schema.
  obs::Tracer* trace = nullptr;

  // Live introspection (docs/observability.md "Live monitoring"). The
  // flow itself always publishes its phase stack / optimizer heartbeat
  // into obs::run_state(); these knobs tell the *driver* (ascdg_cli)
  // which companion services to stand up around the run.
  /// When set, serve /metrics, /healthz, /runz, /flightrecorder on
  /// 127.0.0.1:<port> for the duration of the run (0 = ephemeral port,
  /// printed at startup). CLI: --serve[=PORT].
  std::optional<std::uint16_t> serve_port;
  /// When non-zero, run a watchdog that declares the run stalled (and
  /// flips /healthz to degraded) after this many seconds without farm
  /// or optimizer progress while work is outstanding. CLI:
  /// --watchdog=SECS.
  std::size_t watchdog_stall_secs = 0;
  /// When non-zero, mirror the last K trace records into an in-memory
  /// flight recorder dumped on stall, fatal signal, or /flightrecorder.
  /// CLI: --flight-recorder=K.
  std::size_t flight_recorder_records = 0;
  /// When non-zero, run an obs::TimeSeriesRecorder sampling every this
  /// many milliseconds into the session's telemetry.jsonl (and the
  /// /timeseries ring when serving). Requires session_dir for the
  /// durable file; memory-only otherwise. Excluded from the session
  /// config fingerprint like every other telemetry knob. CLI:
  /// --timeline[=MS].
  std::size_t timeline_interval_ms = 0;
};

/// Hit statistics of one flow phase, as shown in the paper's result
/// tables: the phase's simulation count and the coverage it accumulated.
struct PhaseOutcome {
  std::string name;
  std::size_t sims = 0;
  coverage::SimStats stats;
  /// Wall time the flow spent in this phase (0 for `before`, whose
  /// simulations predate the flow).
  double wall_ms = 0.0;
};

/// When a target event was first hit during the flow — the per-event
/// closure telemetry the NOVA-style coverage tracking asks for.
struct FirstHit {
  coverage::EventId event;
  /// "before", "sampling", "optimization", "harvest", or "never".
  std::string phase;
};

struct FlowResult {
  std::string seed_template;             ///< chosen by the coarse search
  tgen::Skeleton skeleton;
  cdg::RandomSampleResult sampling;
  opt::OptResult optimization;
  /// Present when the refinement stage ran (see
  /// FlowConfig::refine_with_real_target); its simulations are included
  /// in optimization_phase.
  std::optional<opt::OptResult> refinement;
  tgen::TestTemplate best_template;      ///< the harvested template
  PhaseOutcome before;                   ///< pre-CDG regression coverage
  PhaseOutcome sampling_phase;
  PhaseOutcome optimization_phase;
  PhaseOutcome harvest_phase;
  /// One entry per real target event: the first flow phase that hit it.
  std::vector<FirstHit> first_hits;
  /// Evaluation-cache traffic across the optimization (and refinement)
  /// objectives — hits are evaluations that skipped resimulation.
  std::size_t eval_cache_hits = 0;
  std::size_t eval_cache_misses = 0;

  /// Simulations spent by the flow itself (excludes `before`).
  [[nodiscard]] std::size_t flow_sims() const noexcept {
    return sampling_phase.sims + optimization_phase.sims + harvest_phase.sims;
  }
};

}  // namespace ascdg::flow
