#include "util/jsonl.hpp"

#include <array>
#include <charconv>
#include <cmath>

namespace ascdg::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char hex[] = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += hex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonObject::append_key(std::string_view key) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += json_escape(key);
  body_ += "\":";
}

JsonObject& JsonObject::add(std::string_view key, std::string_view value) {
  append_key(key);
  body_ += '"';
  body_ += json_escape(value);
  body_ += '"';
  return *this;
}

JsonObject& JsonObject::add(std::string_view key, bool value) {
  append_key(key);
  body_ += value ? "true" : "false";
  return *this;
}

JsonObject& JsonObject::add(std::string_view key, double value) {
  append_key(key);
  if (!std::isfinite(value)) {
    body_ += "null";
    return *this;
  }
  std::array<char, 32> buf{};
  const auto [end, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), value);
  if (ec != std::errc{}) {
    body_ += "null";  // cannot happen for finite doubles with a 32B buffer
    return *this;
  }
  body_.append(buf.data(), end);
  return *this;
}

JsonObject& JsonObject::add_int(std::string_view key, std::int64_t value) {
  append_key(key);
  std::array<char, 24> buf{};
  const auto [end, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), value);
  body_.append(buf.data(), end);
  (void)ec;
  return *this;
}

JsonObject& JsonObject::add_uint(std::string_view key, std::uint64_t value) {
  append_key(key);
  std::array<char, 24> buf{};
  const auto [end, ec] =
      std::to_chars(buf.data(), buf.data() + buf.size(), value);
  body_.append(buf.data(), end);
  (void)ec;
  return *this;
}

JsonObject& JsonObject::add_raw(std::string_view key, std::string_view json) {
  append_key(key);
  body_ += json;
  return *this;
}

JsonObject& JsonObject::merge(const JsonObject& other) {
  if (other.body_.empty()) return *this;
  if (!body_.empty()) body_ += ',';
  body_ += other.body_;
  return *this;
}

std::string JsonObject::str() const {
  std::string out;
  out.reserve(body_.size() + 2);
  out += '{';
  out += body_;
  out += '}';
  return out;
}

}  // namespace ascdg::util
