// ANSI-colored text tables for the deployment-result reports.
//
// The color semantics follow the IBM convention described in the paper:
// never-hit events are red, lightly-hit events (count < 100 or rate < 1%)
// are orange/yellow, well-hit events are green.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace ascdg::util {

enum class CellColor { kDefault, kGreen, kOrange, kRed, kBold };

enum class Align { kLeft, kRight };

struct Cell {
  std::string text;
  CellColor color = CellColor::kDefault;

  Cell() = default;
  // Implicit conversions keep row literals terse:
  //   table.add_row({"a", "b"}) and add_row({{"x", CellColor::kRed}, ...}).
  Cell(std::string t) : text(std::move(t)) {}                // NOLINT
  Cell(const char* t) : text(t) {}                           // NOLINT
  Cell(std::string t, CellColor c) : text(std::move(t)), color(c) {}
};

/// A simple column-aligned table with optional ANSI colors.
class Table {
 public:
  /// Declares the header row; the column count is fixed from here on.
  explicit Table(std::vector<std::string> headers);

  /// Sets the alignment of one column (default: left for column 0,
  /// right otherwise).
  void set_align(std::size_t column, Align align);

  /// Appends a row. Throws ValidationError on arity mismatch.
  void add_row(std::vector<Cell> cells);

  /// Inserts a horizontal separator line before the next row.
  void add_separator();

  [[nodiscard]] std::size_t column_count() const noexcept {
    return headers_.size();
  }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Renders with box-drawing separators; `use_color` controls ANSI codes.
  void render(std::ostream& os, bool use_color = true) const;

  /// Renders as GitHub-flavored markdown (no color).
  void render_markdown(std::ostream& os) const;

  /// Renders as CSV (no color).
  void render_csv(std::ostream& os) const;

 private:
  struct Row {
    std::vector<Cell> cells;
    bool separator_before = false;
  };
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// True when stdout is attached to a terminal that supports color.
[[nodiscard]] bool stdout_supports_color() noexcept;

}  // namespace ascdg::util
