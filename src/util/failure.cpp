#include "util/failure.hpp"

#include <array>
#include <charconv>
#include <cstdlib>
#include <mutex>
#include <string>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace ascdg::util {

namespace {

enum class Mode { kOff, kOneShot, kEveryNth, kProbability };

struct PointState {
  Mode mode = Mode::kOff;
  std::uint64_t nth = 0;
  double probability = 0.0;
  Xoshiro256 rng{0};
  int error_number = EIO;
  std::uint64_t checks = 0;
  std::uint64_t fires = 0;
};

struct Registry {
  std::mutex mutex;
  std::array<PointState, FailurePoint::kIdCount> points;
};

Registry& registry() {
  static Registry instance;
  return instance;
}

constexpr std::array<const char*, FailurePoint::kIdCount> kNames = {
    "atomic_write.open",   "atomic_write.write", "atomic_write.fsync",
    "atomic_write.rename", "atomic_write.dir_fsync",
    "manifest.read",       "artifact.read",
    "http.accept",         "http.recv",          "http.send",
    "exec.pipe_read",      "exec.pipe_write",
};

/// Symbolic errno values accepted in ASCDG_FAIL_POINTS; anything else
/// must be numeric.
int errno_from_symbol(std::string_view text) {
  struct Entry {
    std::string_view name;
    int value;
  };
  static constexpr Entry kTable[] = {
      {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"EINTR", EINTR},
      {"EAGAIN", EAGAIN}, {"EACCES", EACCES}, {"ENOENT", ENOENT},
      {"EROFS", EROFS},   {"EMFILE", EMFILE}, {"ECONNRESET", ECONNRESET},
      {"EPIPE", EPIPE},
  };
  for (const auto& entry : kTable) {
    if (entry.name == text) return entry.value;
  }
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value <= 0) {
    throw ConfigError("ASCDG_FAIL_POINTS: unknown errno '" +
                      std::string(text) +
                      "' (use a symbolic name like ENOSPC or a positive "
                      "number)");
  }
  return value;
}

std::uint64_t parse_u64(std::string_view text, std::string_view what) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ConfigError("ASCDG_FAIL_POINTS: malformed " + std::string(what) +
                      " '" + std::string(text) + "'");
  }
  return value;
}

double parse_probability(std::string_view text) {
  // std::from_chars for double is not universally available on older
  // libstdc++; strtod on a bounded copy is.
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty() || value < 0.0 ||
      value > 1.0) {
    throw ConfigError("ASCDG_FAIL_POINTS: probability '" + copy +
                      "' must be a number in [0, 1]");
  }
  return value;
}

/// Parses one "point=mode,opt,opt" entry and arms it.
void install_entry(std::string_view entry) {
  const auto eq = entry.find('=');
  if (eq == std::string_view::npos) {
    throw ConfigError("ASCDG_FAIL_POINTS: entry '" + std::string(entry) +
                      "' is missing '=' (want point=mode[,errno=..][,seed=..])");
  }
  const auto id = FailurePoint::find(entry.substr(0, eq));
  if (!id.has_value()) {
    throw ConfigError("ASCDG_FAIL_POINTS: unknown failure point '" +
                      std::string(entry.substr(0, eq)) + "'");
  }

  PointState state;
  std::string_view rest = entry.substr(eq + 1);
  bool first = true;
  std::uint64_t seed = 0x5EEDF417ULL;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view field = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (first) {
      first = false;
      if (field == "once") {
        state.mode = Mode::kOneShot;
      } else if (field.starts_with("nth:")) {
        state.mode = Mode::kEveryNth;
        state.nth = parse_u64(field.substr(4), "nth count");
        if (state.nth == 0) {
          throw ConfigError("ASCDG_FAIL_POINTS: nth count must be >= 1");
        }
      } else if (field.starts_with("prob:")) {
        state.mode = Mode::kProbability;
        state.probability = parse_probability(field.substr(5));
      } else {
        throw ConfigError("ASCDG_FAIL_POINTS: unknown mode '" +
                          std::string(field) +
                          "' (want once, nth:N, or prob:P)");
      }
    } else if (field.starts_with("errno=")) {
      state.error_number = errno_from_symbol(field.substr(6));
    } else if (field.starts_with("seed=")) {
      seed = parse_u64(field.substr(5), "seed");
    } else {
      throw ConfigError("ASCDG_FAIL_POINTS: unknown option '" +
                        std::string(field) + "'");
    }
  }
  if (first) {
    throw ConfigError("ASCDG_FAIL_POINTS: entry '" + std::string(entry) +
                      "' has an empty mode");
  }
  switch (state.mode) {
    case Mode::kOneShot:
      FailurePoint::prime_one_shot(*id, state.error_number);
      break;
    case Mode::kEveryNth:
      FailurePoint::prime_every_nth(*id, state.nth, state.error_number);
      break;
    case Mode::kProbability:
      FailurePoint::prime_probability(*id, state.probability, seed,
                                      state.error_number);
      break;
    case Mode::kOff:
      break;
  }
}

}  // namespace

std::atomic<int> FailurePoint::armed_points_{0};

void FailurePoint::prime_one_shot(Id id, int error_number) {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto& point = reg.points[static_cast<std::size_t>(id)];
  if (point.mode == Mode::kOff) armed_points_.fetch_add(1);
  point.mode = Mode::kOneShot;
  point.error_number = error_number;
}

void FailurePoint::prime_every_nth(Id id, std::uint64_t n, int error_number) {
  if (n == 0) throw ConfigError("FailurePoint: every-Nth needs n >= 1");
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto& point = reg.points[static_cast<std::size_t>(id)];
  if (point.mode == Mode::kOff) armed_points_.fetch_add(1);
  point.mode = Mode::kEveryNth;
  point.nth = n;
  point.error_number = error_number;
  point.checks = 0;  // the Nth check counts from arming
}

void FailurePoint::prime_probability(Id id, double p, std::uint64_t seed,
                                     int error_number) {
  if (p < 0.0 || p > 1.0) {
    throw ConfigError("FailurePoint: probability must be in [0, 1]");
  }
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto& point = reg.points[static_cast<std::size_t>(id)];
  if (point.mode == Mode::kOff) armed_points_.fetch_add(1);
  point.mode = Mode::kProbability;
  point.probability = p;
  point.rng = Xoshiro256(seed);
  point.error_number = error_number;
}

void FailurePoint::disarm(Id id) {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto& point = reg.points[static_cast<std::size_t>(id)];
  if (point.mode != Mode::kOff) armed_points_.fetch_sub(1);
  point.mode = Mode::kOff;
}

void FailurePoint::disarm_all() {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& point : reg.points) {
    if (point.mode != Mode::kOff) armed_points_.fetch_sub(1);
    point = PointState{};
  }
}

std::uint64_t FailurePoint::checks(Id id) {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.points[static_cast<std::size_t>(id)].checks;
}

std::uint64_t FailurePoint::fires(Id id) {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.points[static_cast<std::size_t>(id)].fires;
}

int FailurePoint::check_slow(Id id) noexcept {
  auto& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  auto& point = reg.points[static_cast<std::size_t>(id)];
  if (point.mode == Mode::kOff) return 0;
  ++point.checks;
  bool fire = false;
  switch (point.mode) {
    case Mode::kOneShot:
      fire = true;
      point.mode = Mode::kOff;
      armed_points_.fetch_sub(1);
      break;
    case Mode::kEveryNth:
      fire = point.checks % point.nth == 0;
      break;
    case Mode::kProbability:
      fire = point.rng.bernoulli(point.probability);
      break;
    case Mode::kOff:
      break;
  }
  if (!fire) return 0;
  ++point.fires;
  return point.error_number;
}

void FailurePoint::install(std::string_view spec) {
  while (!spec.empty()) {
    const auto semi = spec.find(';');
    const std::string_view entry = spec.substr(0, semi);
    spec = semi == std::string_view::npos ? std::string_view{}
                                          : spec.substr(semi + 1);
    if (entry.empty()) continue;
    install_entry(entry);
  }
}

void FailurePoint::install_from_env() {
  const char* env = std::getenv("ASCDG_FAIL_POINTS");
  if (env == nullptr || *env == '\0') return;
  install(env);
}

const char* FailurePoint::name(Id id) noexcept {
  return kNames[static_cast<std::size_t>(id)];
}

std::optional<FailurePoint::Id> FailurePoint::find(
    std::string_view name) noexcept {
  for (int i = 0; i < kIdCount; ++i) {
    if (name == kNames[static_cast<std::size_t>(i)]) {
      return static_cast<Id>(i);
    }
  }
  return std::nullopt;
}

}  // namespace ascdg::util
