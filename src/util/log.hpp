// Minimal leveled logger. The CDG flow reports phase progress at Info;
// benchmarks usually silence it with set_level(Level::kWarn).
#pragma once

#include <sstream>
#include <string_view>

namespace ascdg::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted (thread-safe).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Writes one log line to stderr if `level` passes the global filter.
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace ascdg::util
