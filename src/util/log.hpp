// Structured leveled logging. The CDG flow reports phase progress at
// Info; benchmarks usually silence it with set_log_level(Level::kWarn).
//
// Every line carries a severity, a monotonic timestamp (nanoseconds
// since process start, from the same clock the obs tracer stamps spans
// with), and the calling thread's log context — an opaque id that
// obs::Span sets to its span id, so log lines interleaved with a JSONL
// trace can be joined on it. Output goes through a pluggable sink; the
// default sink renders to stderr as
//
//   [ascdg INFO  +0.123456s span=7] message
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string_view>

namespace ascdg::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted (thread-safe).
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Nanoseconds since process start on a steady (monotonic) clock — the
/// shared timebase for log lines and obs trace spans.
[[nodiscard]] std::uint64_t monotonic_ns() noexcept;

/// One log line, as handed to the sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::uint64_t mono_ns = 0;   ///< monotonic_ns() at emission
  std::uint64_t context = 0;   ///< thread's log context (0 = none)
  std::string_view message;    ///< valid only during the sink call
};

using LogSink = std::function<void(const LogRecord&)>;

/// Replaces the global sink (thread-safe). An empty function restores
/// the default stderr sink. Level filtering happens before the sink.
void set_log_sink(LogSink sink);

/// Thread-local correlation id stamped on every log line this thread
/// emits; obs::Span sets it to the active span id. 0 means "no context".
void set_log_context(std::uint64_t context) noexcept;
[[nodiscard]] std::uint64_t log_context() noexcept;

/// Restores the previous context on destruction (RAII for nesting).
class ScopedLogContext {
 public:
  explicit ScopedLogContext(std::uint64_t context) noexcept
      : previous_(log_context()) {
    set_log_context(context);
  }
  ~ScopedLogContext() { set_log_context(previous_); }
  ScopedLogContext(const ScopedLogContext&) = delete;
  ScopedLogContext& operator=(const ScopedLogContext&) = delete;

 private:
  std::uint64_t previous_;
};

/// Routes one line through the sink if `level` passes the global filter.
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace ascdg::util
