// Typed error hierarchy for AS-CDG.
//
// Errors that a library user can act on (bad template text, invalid
// configuration, impossible requests) are thrown as subclasses of
// ascdg::util::Error. Internal invariant violations use ASCDG_ASSERT,
// which throws LogicError so tests can exercise failure paths without
// aborting the process.
#pragma once

#include <stdexcept>
#include <string>

namespace ascdg::util {

/// Root of the AS-CDG error hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed template / skeleton text.
class ParseError : public Error {
 public:
  ParseError(std::string message, std::size_t line)
      : Error("parse error at line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Structurally valid input that violates a semantic rule
/// (e.g. negative weight, empty range, duplicate parameter name).
class ValidationError : public Error {
 public:
  using Error::Error;
};

/// Invalid flow / optimizer / farm configuration.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Lookup of an unknown event, parameter, or template.
class NotFoundError : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violation (bug in this library, not in user input).
class LogicError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

}  // namespace ascdg::util

/// Invariant check that throws ascdg::util::LogicError on failure.
#define ASCDG_ASSERT(expr, message)                                          \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::ascdg::util::detail::assert_fail(#expr, __FILE__, __LINE__, (message)); \
    }                                                                        \
  } while (false)
