// Fault injection for crash-durability and error-path testing.
//
// A FailurePoint is a named site in production code (an fsync, a
// rename, a socket accept) that tests can arm to fail on demand with a
// chosen errno. Modeled on realm-core's SimulatedFailure: the check is
// a single relaxed atomic load when nothing is armed, so shipping the
// hooks in release builds costs nothing measurable (guarded by
// BM_FailurePointCheckOff in bench_micro).
//
// Three trigger modes per point:
//   - one-shot:      fires on the next check, then disarms itself
//   - every-Nth:     fires on the Nth, 2Nth, 3Nth... check
//   - probabilistic: fires with probability p per check, driven by a
//                    seeded PRNG so a failing schedule replays exactly
//
// Points can be armed programmatically (tests) or from the
// ASCDG_FAIL_POINTS environment variable (the CLI fuzz harness):
//
//   ASCDG_FAIL_POINTS="atomic_write.fsync=nth:3,errno=ENOSPC;http.recv=once,errno=EINTR"
//
// Grammar: entry (';' entry)*, entry = point '=' mode (',' option)*,
// mode = 'once' | 'nth:N' | 'prob:P', option = 'errno=SYM|INT' |
// 'seed=N'. A malformed spec throws util::ConfigError — a fuzz run
// with a typo'd spec must die loudly, not pass vacuously.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <optional>
#include <string_view>

namespace ascdg::util {

class FailurePoint {
 public:
  /// Every injectable site in the system. Names (for ASCDG_FAIL_POINTS
  /// and diagnostics) live in name().
  enum class Id : int {
    kAtomicWriteOpen = 0,  ///< open(2) of the temp file
    kAtomicWriteWrite,     ///< write(2) of the payload (fires a short write)
    kAtomicWriteFsync,     ///< fsync(2) of the temp file
    kAtomicWriteRename,    ///< rename(2) over the target
    kAtomicWriteDirFsync,  ///< fsync(2) of the parent directory
    kManifestRead,         ///< session manifest open/read
    kArtifactRead,         ///< stage artifact open/read
    kHttpAccept,           ///< HttpServer accept(2)
    kHttpRecv,             ///< HttpServer recv(2)
    kHttpSend,             ///< HttpServer send(2)
    kExecPipeRead,         ///< exec::ProcessFarm read(2) of a worker frame
    kExecPipeWrite,        ///< exec::ProcessFarm write(2) of a worker frame
  };
  static constexpr int kIdCount = 12;

  /// The production-side hook: returns 0 when the point does not fire,
  /// else the errno to inject. One relaxed atomic load when nothing is
  /// armed anywhere in the process.
  static int check(Id id) noexcept {
    if (armed_points_.load(std::memory_order_relaxed) == 0) return 0;
    return check_slow(id);
  }

  /// Arms `id` to fire exactly once with `error_number`, then disarm.
  static void prime_one_shot(Id id, int error_number = EIO);
  /// Arms `id` to fire on every Nth check (n >= 1; n == 1 fires always).
  static void prime_every_nth(Id id, std::uint64_t n, int error_number = EIO);
  /// Arms `id` to fire with probability `p` per check; the draw sequence
  /// is a pure function of `seed`, so a schedule replays exactly.
  static void prime_probability(Id id, double p, std::uint64_t seed,
                                int error_number = EIO);
  static void disarm(Id id);
  /// Disarms every point and zeroes all counters.
  static void disarm_all();

  /// Checks observed / failures injected while the point was armed
  /// (the disarmed fast path does not count).
  [[nodiscard]] static std::uint64_t checks(Id id);
  [[nodiscard]] static std::uint64_t fires(Id id);

  /// Arms points from a spec string (see file comment for the grammar).
  /// Throws util::ConfigError on any malformed input.
  static void install(std::string_view spec);
  /// install(getenv("ASCDG_FAIL_POINTS")); no-op when unset or empty.
  static void install_from_env();

  /// Stable name used in ASCDG_FAIL_POINTS, e.g. "atomic_write.fsync".
  [[nodiscard]] static const char* name(Id id) noexcept;
  [[nodiscard]] static std::optional<Id> find(std::string_view name) noexcept;

 private:
  static int check_slow(Id id) noexcept;
  static std::atomic<int> armed_points_;
};

}  // namespace ascdg::util
