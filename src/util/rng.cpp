#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace ascdg::util {

std::size_t Xoshiro256::weighted_index(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return weights.size();
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (pick < w) return i;
    pick -= w;
  }
  // Floating-point slack: return the last positive-weight index.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size();
}

double Xoshiro256::normal() noexcept {
  // Box–Muller; discard the second variate for simplicity.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace ascdg::util
