#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ascdg::util {

namespace {
bool is_space(char c) noexcept {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::optional<long long> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

bool is_identifier(std::string_view name) noexcept {
  if (name.empty()) return false;
  const auto head = static_cast<unsigned char>(name.front());
  if (!std::isalpha(head) && name.front() != '_') return false;
  for (const char c : name.substr(1)) {
    const auto uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && c != '_' && c != '.') return false;
  }
  return true;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string format_number(double value, int precision) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    return buffer;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
  return buffer;
}

std::string format_percent(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.3f%%", fraction * 100.0);
  return buffer;
}

std::string format_count(std::size_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace ascdg::util
