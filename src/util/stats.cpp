#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace ascdg::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

ProportionInterval wilson_interval(std::size_t hits, std::size_t trials,
                                   double z) noexcept {
  if (trials == 0) return {0.0, 1.0};
  const auto n = static_cast<double>(trials);
  const double p = static_cast<double>(hits) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - margin), std::min(1.0, center + margin)};
}

double chi_square_statistic(std::span<const std::size_t> observed,
                            std::span<const double> expected_probs) {
  ASCDG_ASSERT(observed.size() == expected_probs.size(),
               "observed/expected size mismatch");
  double prob_total = 0.0;
  std::size_t count_total = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ASCDG_ASSERT(expected_probs[i] >= 0.0, "negative expected probability");
    prob_total += expected_probs[i];
    count_total += observed[i];
  }
  ASCDG_ASSERT(prob_total > 0.0, "expected probabilities sum to zero");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected =
        static_cast<double>(count_total) * expected_probs[i] / prob_total;
    if (expected == 0.0) {
      ASCDG_ASSERT(observed[i] == 0,
                   "observed count in zero-probability bin");
      continue;
    }
    const double diff = static_cast<double>(observed[i]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

namespace {

/// Inverse standard normal CDF via the Beasley-Springer-Moro rational
/// approximation (|error| < 1.15e-9 over (0,1)).
double inverse_normal(double p) {
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  double z;
  if (p < 0.02425) {
    const double q = std::sqrt(-2.0 * std::log(p));
    z = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 0.97575) {
    const double q = p - 0.5;
    const double r = q * q;
    z = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    z = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  return z;
}

}  // namespace

double chi_square_critical(std::size_t dof, double alpha) {
  ASCDG_ASSERT(dof >= 1, "chi-square needs dof >= 1");
  ASCDG_ASSERT(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  if (dof == 1) {
    // chi2_1 = Z^2, so the critical value is the squared two-sided
    // normal quantile (exact).
    const double z = inverse_normal(1.0 - alpha / 2.0);
    return z * z;
  }
  if (dof == 2) {
    // chi2_2 is Exp(1/2): critical value is -2 ln(alpha) (exact).
    return -2.0 * std::log(alpha);
  }
  // Wilson-Hilferty: chi2_k(p) ~= k * (1 - 2/(9k) + z*sqrt(2/(9k)))^3,
  // accurate to well under 1% for k >= 3.
  const double z = inverse_normal(1.0 - alpha);
  const auto k = static_cast<double>(dof);
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

double mean_of(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (const double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

std::size_t argmax(std::span<const double> xs) {
  ASCDG_ASSERT(!xs.empty(), "argmax of empty span");
  std::size_t best = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] > xs[best]) best = i;
  }
  return best;
}

}  // namespace ascdg::util
