#include "util/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "util/error.hpp"
#include "util/failure.hpp"

namespace ascdg::util {

namespace {

using Fp = FailurePoint;

[[noreturn]] void fail(const std::string& what, const std::string& path,
                       int error_number) {
  throw Error(what + " '" + path + "': " + std::strerror(error_number));
}

/// close(2) on an error path: must not clobber the errno being reported.
void close_keep_errno(int fd) noexcept {
  const int saved = errno;
  ::close(fd);
  errno = saved;
}

void unlink_keep_errno(const std::string& path) noexcept {
  const int saved = errno;
  ::unlink(path.c_str());
  errno = saved;
}

int open_retry(const char* path, int flags, mode_t mode) noexcept {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

/// Full write with EINTR retry and short-write continuation. The
/// injection site models a short write against a full disk: half the
/// remaining bytes land, then the injected errno surfaces.
bool write_all(int fd, const char* data, std::size_t size) noexcept {
  std::size_t done = 0;
  while (done < size) {
    if (const int e = Fp::check(Fp::Id::kAtomicWriteWrite); e != 0) {
      (void)!::write(fd, data + done, (size - done) / 2);
      errno = e;
      return false;
    }
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool fsync_retry(int fd, Fp::Id point) noexcept {
  if (const int e = Fp::check(point); e != 0) {
    errno = e;
    return false;
  }
  while (::fsync(fd) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

}  // namespace

void atomic_write_file(const std::filesystem::path& path,
                       std::string_view content, Durability durability) {
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) {
      throw Error("cannot create directory '" + path.parent_path().string() +
                  "': " + ec.message());
    }
  }
  const std::string target = path.string();
  const std::string tmp = target + ".tmp";

  int fd = -1;
  if (const int e = Fp::check(Fp::Id::kAtomicWriteOpen); e != 0) {
    errno = e;
  } else {
    fd = open_retry(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
  }
  if (fd < 0) fail("cannot open temp file", tmp, errno);

  if (!write_all(fd, content.data(), content.size())) {
    close_keep_errno(fd);
    unlink_keep_errno(tmp);
    fail("failed writing", tmp, errno);
  }

  // Data must be on stable storage *before* the rename publishes the
  // name, or a power loss can commit the name to an empty file.
  if (durability == Durability::kFull &&
      !fsync_retry(fd, Fp::Id::kAtomicWriteFsync)) {
    close_keep_errno(fd);
    unlink_keep_errno(tmp);
    fail("cannot fsync temp file", tmp, errno);
  }

  if (::close(fd) != 0) {
    unlink_keep_errno(tmp);
    fail("cannot close temp file", tmp, errno);
  }

  bool renamed = false;
  if (const int e = Fp::check(Fp::Id::kAtomicWriteRename); e != 0) {
    errno = e;
  } else {
    renamed = ::rename(tmp.c_str(), target.c_str()) == 0;
  }
  if (!renamed) {
    unlink_keep_errno(tmp);
    fail("cannot rename temp file into", target, errno);
  }

  // The rename itself is directory metadata; fsync the directory so the
  // new name survives power loss too. A filesystem that cannot fsync a
  // directory (EINVAL) keeps whatever guarantee it natively has.
  if (durability == Durability::kFull) {
    const std::filesystem::path parent =
        path.has_parent_path() ? path.parent_path() : ".";
    const int dir_fd =
        open_retry(parent.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
    if (dir_fd < 0) {
      fail("cannot open directory for fsync", parent.string(), errno);
    }
    if (!fsync_retry(dir_fd, Fp::Id::kAtomicWriteDirFsync)) {
      const int err = errno;
      close_keep_errno(dir_fd);
      if (err != EINVAL) {
        fail("cannot fsync directory", parent.string(), err);
      }
    } else {
      ::close(dir_fd);
    }
  }
}

void remove_stale_tmp_files(const std::filesystem::path& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator entries(dir, ec);
  if (ec) return;
  for (const auto& entry : entries) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    if (entry.path().filename().string().ends_with(".tmp")) {
      std::filesystem::remove(entry.path(), entry_ec);
    }
  }
}

}  // namespace ascdg::util
