#include "util/json.hpp"

#include <charconv>
#include <cmath>

#include "util/error.hpp"

namespace ascdg::util {

namespace {

[[noreturn]] void kind_error(const char* wanted, JsonValue::Kind got) {
  const char* name = "?";
  switch (got) {
    case JsonValue::Kind::kNull: name = "null"; break;
    case JsonValue::Kind::kBool: name = "bool"; break;
    case JsonValue::Kind::kNumber: name = "number"; break;
    case JsonValue::Kind::kString: name = "string"; break;
    case JsonValue::Kind::kArray: name = "array"; break;
    case JsonValue::Kind::kObject: name = "object"; break;
  }
  throw Error(std::string("json: expected ") + wanted + ", got " + name);
}

/// Recursive-descent parser over the whole document. Tracks the current
/// line so every error points at its source.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("json: " + message, line_);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  char next() {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }

  void skip_whitespace() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      (void)next();
    }
  }

  void expect(char wanted) {
    if (eof() || peek() != wanted) {
      fail(std::string("expected '") + wanted + "'");
    }
    (void)next();
  }

  void expect_literal(std::string_view literal) {
    for (const char c : literal) {
      if (eof() || next() != c) {
        fail("invalid literal (expected '" + std::string(literal) + "')");
      }
    }
  }

  JsonValue parse_value() {
    skip_whitespace();
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        expect_literal("true");
        return JsonValue(true);
      case 'f':
        expect_literal("false");
        return JsonValue(false);
      case 'n':
        expect_literal("null");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue::Object members;
    skip_whitespace();
    if (!eof() && peek() == '}') {
      (void)next();
      return JsonValue(std::move(members));
    }
    for (;;) {
      skip_whitespace();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      members.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated object");
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}' in object");
    }
    return JsonValue(std::move(members));
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue::Array items;
    skip_whitespace();
    if (!eof() && peek() == ']') {
      (void)next();
      return JsonValue(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value());
      skip_whitespace();
      if (eof()) fail("unterminated array");
      const char c = next();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']' in array");
    }
    return JsonValue(std::move(items));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const char c = next();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) fail("unterminated escape sequence");
      const char esc = next();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) fail("truncated \\u escape");
      const char c = next();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail("lone high surrogate in \\u escape");
      }
      (void)next();
      (void)next();
      const std::uint32_t low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) {
        fail("invalid low surrogate in \\u escape");
      }
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("lone low surrogate in \\u escape");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') (void)next();
    if (eof() || peek() < '0' || peek() > '9') fail("invalid number");
    // RFC 8259: no leading zeros on multi-digit integer parts.
    if (peek() == '0') {
      (void)next();
      if (!eof() && peek() >= '0' && peek() <= '9') {
        fail("leading zero in number");
      }
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') (void)next();
    }
    if (!eof() && peek() == '.') {
      (void)next();
      if (eof() || peek() < '0' || peek() > '9') fail("truncated fraction");
      while (!eof() && peek() >= '0' && peek() <= '9') (void)next();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      (void)next();
      if (!eof() && (peek() == '+' || peek() == '-')) (void)next();
      if (eof() || peek() < '0' || peek() > '9') fail("truncated exponent");
      while (!eof() && peek() >= '0' && peek() <= '9') (void)next();
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || end != last) fail("unparseable number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_;
}

std::int64_t JsonValue::as_int64() const {
  const double value = as_double();
  if (!std::isfinite(value) || std::nearbyint(value) != value ||
      std::abs(value) > 0x1.0p53) {
    throw Error("json: number is not an exact integer");
  }
  return static_cast<std::int64_t>(value);
}

std::uint64_t JsonValue::as_uint64() const {
  const std::int64_t value = as_int64();
  if (value < 0) throw Error("json: number is negative");
  return static_cast<std::uint64_t>(value);
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw NotFoundError("json: missing key '" + std::string(key) + "'");
  }
  return *value;
}

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace ascdg::util
