// Crash-durable filesystem primitives.
//
// atomic_write_file is the one way anything in AS-CDG persists a file:
// write to a same-directory temp file, fsync it, rename(2) over the
// target, then fsync the parent directory. Rename atomicity alone only
// guarantees the *name* switches in one step; without the two fsyncs a
// power loss can still deliver an empty or truncated "committed" file
// (the rename metadata can reach the journal before the data blocks),
// and the rename itself can vanish. The full sequence guarantees that
// once the call returns, the new content survives power loss — and a
// crash at any earlier instant leaves the previous file intact.
//
// Every syscall site is wrapped in a util::FailurePoint
// (atomic_write.open/write/fsync/rename/dir_fsync), so tests can
// inject ENOSPC, short writes, or rename failures deterministically.
// All error paths unlink the temp file; nothing leaks next to the
// target.
#pragma once

#include <filesystem>
#include <string_view>

namespace ascdg::util {

enum class Durability {
  /// fsync the temp file before rename and the directory after —
  /// survives power loss. The default everywhere.
  kFull,
  /// Skip both fsyncs: still atomic against process crash (SIGKILL),
  /// not against power loss. For throwaway data and benchmarks that
  /// quantify the fsync price.
  kNoFsync,
};

/// Writes `content` to `path` atomically and durably (see file
/// comment), creating parent directories. Throws util::Error on any
/// IO failure; the temp file is always cleaned up on failure.
void atomic_write_file(const std::filesystem::path& path,
                       std::string_view content,
                       Durability durability = Durability::kFull);

/// Removes `*.tmp` files left in `dir` by writes that died between
/// open and rename (e.g. SIGKILL mid-atomic_write_file). Quietly does
/// nothing when `dir` does not exist. Call on re-opening a directory
/// of durable state, never while writers are active.
void remove_stale_tmp_files(const std::filesystem::path& dir);

}  // namespace ascdg::util
