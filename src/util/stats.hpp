// Small statistics toolkit used across AS-CDG: running moments
// (Welford), binomial proportion confidence intervals, and chi-square
// goodness-of-fit support for the distribution property tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ascdg::util {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than 2 samples.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided binomial proportion confidence interval.
struct ProportionInterval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Wilson score interval for `hits` successes out of `trials`, at
/// confidence z (z = 1.96 for ~95%). Well-behaved at p near 0/1, which
/// matters for the rare events CDG deals with.
[[nodiscard]] ProportionInterval wilson_interval(std::size_t hits,
                                                 std::size_t trials,
                                                 double z = 1.96) noexcept;

/// Pearson chi-square statistic for observed counts vs expected
/// probabilities (probabilities need not be normalized). Bins with zero
/// expected probability must have zero observed count (asserted).
[[nodiscard]] double chi_square_statistic(std::span<const std::size_t> observed,
                                          std::span<const double> expected_probs);

/// Approximate upper critical value of the chi-square distribution with
/// `dof` degrees of freedom at significance alpha via the Wilson–Hilferty
/// transformation. Accurate enough for test thresholds (dof >= 1).
[[nodiscard]] double chi_square_critical(std::size_t dof, double alpha = 0.001);

/// Sample mean of a span (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> xs) noexcept;

/// Index of the maximum element; xs must be non-empty.
[[nodiscard]] std::size_t argmax(std::span<const double> xs);

}  // namespace ascdg::util
