// Minimal JSON-line building for run telemetry.
//
// The batch trace sink (batch::TraceSink) writes one JSON object per
// line (JSONL). This header provides the only two pieces that needs:
// RFC 8259 string escaping and a small append-only object builder.
// It is deliberately not a JSON library — no parsing, no nesting
// beyond raw sub-objects — so it stays dependency-free and allocation
// light on the hot path.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>

namespace ascdg::util {

/// Escapes `text` for use inside a JSON string literal (quotes,
/// backslash, control characters; everything else passes through, so
/// valid UTF-8 input stays valid UTF-8 output).
[[nodiscard]] std::string json_escape(std::string_view text);

/// Append-only builder for one flat JSON object. Keys are emitted in
/// insertion order; duplicate keys are the caller's bug (not checked).
class JsonObject {
 public:
  JsonObject& add(std::string_view key, std::string_view value);
  JsonObject& add(std::string_view key, const char* value) {
    return add(key, std::string_view(value));
  }
  JsonObject& add(std::string_view key, bool value);
  /// Finite doubles render shortest-round-trip; NaN / infinity (which
  /// JSON cannot represent) render as null.
  JsonObject& add(std::string_view key, double value);

  template <std::integral T>
    requires(!std::same_as<T, bool>)
  JsonObject& add(std::string_view key, T value) {
    if constexpr (std::signed_integral<T>) {
      return add_int(key, static_cast<std::int64_t>(value));
    } else {
      return add_uint(key, static_cast<std::uint64_t>(value));
    }
  }

  /// Splices `json` in verbatim — for pre-built arrays / sub-objects.
  JsonObject& add_raw(std::string_view key, std::string_view json);

  /// Appends every field of `other` after this object's fields.
  JsonObject& merge(const JsonObject& other);

  [[nodiscard]] bool empty() const noexcept { return body_.empty(); }

  /// The complete object, braces included.
  [[nodiscard]] std::string str() const;

 private:
  JsonObject& add_int(std::string_view key, std::int64_t value);
  JsonObject& add_uint(std::string_view key, std::uint64_t value);
  void append_key(std::string_view key);

  std::string body_;
};

}  // namespace ascdg::util
