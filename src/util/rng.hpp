// Deterministic random number generation for AS-CDG.
//
// Everything random in the system flows through these generators so that
// any experiment is exactly reproducible from a single root seed,
// independent of thread count or evaluation order. We use xoshiro256**
// (Blackman & Vigna) as the workhorse generator and splitmix64 both to
// seed it and to derive independent child streams ("seed streams") for
// parallel jobs.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace ascdg::util {

/// splitmix64 step: advances `state` and returns the next 64-bit output.
/// Used for seeding and for deriving statistically independent substreams.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  constexpr explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) using the top 53 bits.
  constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  /// Uses Lemire-style rejection to avoid modulo bias.
  constexpr std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t span = hi - lo;
    if (span == std::numeric_limits<std::uint64_t>::max()) return (*this)();
    const std::uint64_t bound = span + 1;
    // Rejection sampling on the top of the range.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return lo + r % bound;
    }
  }

  /// Uniform integer in [lo, hi] (inclusive) for signed 64-bit bounds.
  constexpr std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
    const auto ulo = static_cast<std::uint64_t>(lo);
    const auto uhi = static_cast<std::uint64_t>(hi);
    return static_cast<std::int64_t>(ulo + uniform_u64(0, uhi - ulo));
  }

  /// Bernoulli draw with success probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Index drawn from unnormalized non-negative weights; returns
  /// weights.size() if all weights are zero (caller must handle).
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Standard normal via Box–Muller (polar form not needed; precision fine).
  double normal() noexcept;

  /// The raw 256-bit state, for checkpointing a generator mid-stream
  /// (the optimizer's resume path). restore(state()) round-trips.
  [[nodiscard]] constexpr std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }
  constexpr void restore(const std::array<std::uint64_t, 4>& state) noexcept {
    state_ = state;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Derives reproducible, statistically independent child seeds from a
/// root seed. Child i is a pure function of (root, i), so parallel
/// consumers can be seeded without any ordering dependence.
class SeedStream {
 public:
  /// `start` positions the sequential counter — resuming a checkpointed
  /// consumer continues its seed sequence exactly.
  constexpr explicit SeedStream(std::uint64_t root,
                                std::uint64_t start = 0) noexcept
      : root_(root), counter_(start) {}

  /// Child seed for index i (pure; no internal state mutation).
  [[nodiscard]] constexpr std::uint64_t at(std::uint64_t i) const noexcept {
    // Mix root and index through two rounds of splitmix64.
    std::uint64_t s = root_ ^ (0x9e3779b97f4a7c15ULL * (i + 1));
    (void)splitmix64_next(s);
    return splitmix64_next(s);
  }

  /// Next sequential child seed (stateful convenience).
  constexpr std::uint64_t next() noexcept { return at(counter_++); }

  /// Seeds handed out so far via next() — checkpoint alongside root().
  [[nodiscard]] constexpr std::uint64_t counter() const noexcept {
    return counter_;
  }

  [[nodiscard]] constexpr std::uint64_t root() const noexcept { return root_; }

 private:
  std::uint64_t root_;
  std::uint64_t counter_ = 0;
};

/// Fisher–Yates shuffle of a vector-like span.
template <typename T>
void shuffle(std::span<T> items, Xoshiro256& rng) {
  if (items.size() < 2) return;
  for (std::size_t i = items.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_u64(0, i));
    using std::swap;
    swap(items[i], items[j]);
  }
}

}  // namespace ascdg::util
