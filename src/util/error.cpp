#include "util/error.hpp"

namespace ascdg::util::detail {

void assert_fail(const char* expr, const char* file, int line,
                 const std::string& message) {
  throw LogicError(std::string("ASCDG_ASSERT(") + expr + ") failed at " + file +
                   ":" + std::to_string(line) + ": " + message);
}

}  // namespace ascdg::util::detail
