#include "util/table.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>

#include "util/error.hpp"

namespace ascdg::util {

namespace {

const char* color_code(CellColor color) noexcept {
  switch (color) {
    case CellColor::kGreen:
      return "\x1b[32m";
    case CellColor::kOrange:
      return "\x1b[33m";
    case CellColor::kRed:
      return "\x1b[31m";
    case CellColor::kBold:
      return "\x1b[1m";
    case CellColor::kDefault:
      return "";
  }
  return "";
}

std::string pad(const std::string& text, std::size_t width, Align align) {
  if (text.size() >= width) return text;
  const std::string padding(width - text.size(), ' ');
  return align == Align::kLeft ? text + padding : padding + text;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ASCDG_ASSERT(!headers_.empty(), "table needs at least one column");
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void Table::set_align(std::size_t column, Align align) {
  ASCDG_ASSERT(column < aligns_.size(), "column out of range");
  aligns_[column] = align;
}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != headers_.size()) {
    throw ValidationError("table row has " + std::to_string(cells.size()) +
                          " cells; expected " +
                          std::to_string(headers_.size()));
  }
  rows_.push_back({std::move(cells), pending_separator_});
  pending_separator_ = false;
}

void Table::add_separator() { pending_separator_ = true; }

void Table::render(std::ostream& os, bool use_color) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].text.size());
    }
  }

  const auto rule = [&] {
    os << '+';
    for (const std::size_t w : widths) {
      os << std::string(w + 2, '-') << '+';
    }
    os << '\n';
  };

  rule();
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << pad(headers_[c], widths[c], aligns_[c]) << " |";
  }
  os << '\n';
  rule();
  for (const auto& row : rows_) {
    if (row.separator_before) rule();
    os << '|';
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      const auto& cell = row.cells[c];
      os << ' ';
      if (use_color && cell.color != CellColor::kDefault) {
        os << color_code(cell.color) << pad(cell.text, widths[c], aligns_[c])
           << "\x1b[0m";
      } else {
        os << pad(cell.text, widths[c], aligns_[c]);
      }
      os << " |";
    }
    os << '\n';
  }
  rule();
}

void Table::render_markdown(std::ostream& os) const {
  os << '|';
  for (const auto& header : headers_) os << ' ' << header << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (aligns_[c] == Align::kRight ? " ---: |" : " --- |");
  }
  os << '\n';
  for (const auto& row : rows_) {
    os << '|';
    for (const auto& cell : row.cells) os << ' ' << cell.text << " |";
    os << '\n';
  }
}

void Table::render_csv(std::ostream& os) const {
  const auto emit = [&os](const std::string& field, bool last) {
    const bool quote = field.find_first_of(",\"\n") != std::string::npos;
    if (quote) {
      os << '"';
      for (const char ch : field) {
        if (ch == '"') os << '"';
        os << ch;
      }
      os << '"';
    } else {
      os << field;
    }
    if (!last) os << ',';
  };
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    emit(headers_[c], c + 1 == headers_.size());
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      emit(row.cells[c].text, c + 1 == row.cells.size());
    }
    os << '\n';
  }
}

bool stdout_supports_color() noexcept {
  if (::isatty(STDOUT_FILENO) == 0) return false;
  const char* term = std::getenv("TERM");
  return term != nullptr && std::string_view(term) != "dumb";
}

}  // namespace ascdg::util
