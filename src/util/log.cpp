#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <utility>

namespace ascdg::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;           // serializes sink swaps and default output
LogSink g_sink;               // empty = default stderr sink
thread_local std::uint64_t tls_context = 0;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

/// The default sink: "[ascdg INFO  +1.234567s span=7] message" on
/// stderr. Called under g_mutex so concurrent lines never interleave.
void default_sink(const LogRecord& record) {
  char stamp[48];
  std::snprintf(stamp, sizeof stamp, "+%.6fs",
                static_cast<double>(record.mono_ns) / 1e9);
  std::cerr << "[ascdg " << level_tag(record.level) << ' ' << stamp;
  if (record.context != 0) std::cerr << " span=" << record.context;
  std::cerr << "] " << record.message << '\n';
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

std::uint64_t monotonic_ns() noexcept {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch)
          .count());
}

void set_log_sink(LogSink sink) {
  const std::scoped_lock lock(g_mutex);
  g_sink = std::move(sink);
}

void set_log_context(std::uint64_t context) noexcept { tls_context = context; }

std::uint64_t log_context() noexcept { return tls_context; }

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  const LogRecord record{level, monotonic_ns(), tls_context, message};
  const std::scoped_lock lock(g_mutex);
  if (g_sink) {
    g_sink(record);
  } else {
    default_sink(record);
  }
}

}  // namespace ascdg::util
