#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace ascdg::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  const std::scoped_lock lock(g_mutex);
  std::cerr << "[ascdg " << level_tag(level) << "] " << message << '\n';
}

}  // namespace ascdg::util
