// String helpers shared by the template DSL parser and the reporters.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ascdg::util {

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view s) noexcept;

/// Splits on a delimiter character; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// Splits into non-empty whitespace-separated tokens.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Parses a signed integer; nullopt on any malformed input or overflow.
[[nodiscard]] std::optional<long long> parse_int(std::string_view s) noexcept;

/// Parses a double; nullopt on malformed input.
[[nodiscard]] std::optional<double> parse_double(std::string_view s) noexcept;

/// True when `name` is a valid identifier: [A-Za-z_][A-Za-z0-9_.]*
[[nodiscard]] bool is_identifier(std::string_view name) noexcept;

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// Formats a double compactly: integers without trailing ".0",
/// otherwise up to `precision` significant decimals.
[[nodiscard]] std::string format_number(double value, int precision = 6);

/// Formats a probability as a percentage with 3 decimals ("10.321%").
[[nodiscard]] std::string format_percent(double fraction);

/// Formats an integer with thousands separators ("1,000,000").
[[nodiscard]] std::string format_count(std::size_t n);

}  // namespace ascdg::util
