// Minimal RFC 8259 JSON reader — the read side of util/jsonl.hpp.
//
// The session layer persists manifests and stage artifacts with the
// append-only JsonObject builder; resuming a run needs to read them
// back. json_parse() round-trips everything JsonObject can emit
// (objects, arrays, strings with escapes, shortest-round-trip doubles,
// integers, booleans, and the null that non-finite doubles render as)
// and is deliberately dependency-free: no allocator tricks, no SIMD,
// just a recursive-descent parser that is nowhere near any hot path.
//
// Errors throw util::ParseError carrying the 1-based line of the
// offending byte, matching the template-DSL parser's convention.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ascdg::util {

/// One parsed JSON value. Object members keep document order (JsonObject
/// emits in insertion order, and manifests are diffed by humans).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() = default;  // null
  explicit JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  explicit JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  explicit JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  explicit JsonValue(Array value)
      : kind_(Kind::kArray), array_(std::move(value)) {}
  explicit JsonValue(Object value)
      : kind_(Kind::kObject), object_(std::move(value)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  // Checked accessors. Throws util::Error on a kind mismatch — callers
  // (the session layer) treat that as a corrupt artifact.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// as_double() checked and converted to an integer type; throws
  /// util::Error when the number is not exactly representable (NaN,
  /// fractional, negative for unsigned, or beyond 2^53).
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] std::size_t as_size() const {
    return static_cast<std::size_t>(as_uint64());
  }

  /// Object member lookup: nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;
  /// Object member lookup; throws util::NotFoundError when absent.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Throws util::ParseError with the 1-based
/// line number of the first offending byte.
[[nodiscard]] JsonValue json_parse(std::string_view text);

}  // namespace ascdg::util
