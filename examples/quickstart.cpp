// Quickstart: the complete AS-CDG flow in ~50 lines.
//
// We take the simulated I/O unit, point the flow at its crc_* event
// family (whose deep tail the existing regression suite never hits),
// and let AS-CDG find a test-template that hits the uncovered events.
//
//   $ ./quickstart
//
// The printed table matches the paper's Fig. 3 format: hit counts and
// hit rates per event, per flow phase.
#include <iostream>

#include "exec/thread_farm.hpp"
#include "flow/runner.hpp"
#include "duv/io_unit.hpp"
#include "neighbors/neighbors.hpp"
#include "report/report.hpp"
#include "util/log.hpp"

int main() {
  using namespace ascdg;

  // 1. The design under verification and the batch simulation farm.
  const duv::IoUnit io;
  exec::ThreadFarm farm;  // one worker per hardware thread

  // 2. "Before CDG": simulate the unit's existing regression suite and
  //    record per-template coverage (this is what TAC mines).
  coverage::CoverageRepository repo(io.space().size());
  for (const auto& tmpl : io.suite()) {
    repo.record(tmpl.name(), farm.run(io, tmpl, 2000, 1));
  }

  // 3. The approximated target: the whole crc family, with the events
  //    that are still uncovered as the real targets.
  const auto target =
      neighbors::family_target(io.space(), "crc", repo.total());
  std::cout << "Uncovered target events:";
  for (const auto event : target.targets()) {
    std::cout << ' ' << io.space().name(event);
  }
  std::cout << "\n\n";

  // 4. Run the flow: coarse search -> skeletonize -> sample -> optimize
  //    -> harvest.
  flow::FlowConfig config;
  config.sample_templates = 100;
  config.sample_sims = 50;
  config.opt_directions = 10;
  config.opt_sims_per_point = 100;
  config.opt_max_iterations = 6;
  config.harvest_sims = 2000;
  flow::CdgRunner runner(io, farm, config);
  const auto suite = io.suite();
  const auto result = runner.run(target, repo, suite);

  // 5. Report.
  std::cout << "Seed template (coarse search): " << result.seed_template
            << "\n"
            << "Skeleton marks (search dimensions): "
            << result.skeleton.mark_count() << "\n"
            << report::phase_caption(result) << "\n\n";
  const auto family = io.crc_family();
  const std::vector<coverage::EventId> events(family.begin(), family.end());
  report::phase_table(io.space(), events, result)
      .render(std::cout, util::stdout_supports_color());

  std::cout << "\nHarvested test-template:\n"
            << tgen::to_text(result.best_template);
  return 0;
}
