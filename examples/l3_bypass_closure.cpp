// Coverage closure on the L3 cache's bypass-tracker family — the
// scenario of the paper's Fig. 4: a 16-event buffer-fill family
// (byp_reqs01..byp_reqs16) where the regression suite covers only the
// shallow end. Also prints the optimization-progress trace (Fig. 6).
//
//   $ ./l3_bypass_closure [before_sims_per_template]
#include <cstdlib>
#include <iostream>

#include "exec/thread_farm.hpp"
#include "flow/runner.hpp"
#include "duv/l3_cache.hpp"
#include "neighbors/neighbors.hpp"
#include "report/report.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace ascdg;
  const std::size_t before_sims =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 4000;

  const duv::L3Cache l3;
  exec::ThreadFarm farm;

  // Mainstream regression: every suite template, many sims each.
  coverage::CoverageRepository repo(l3.space().size());
  const auto suite = l3.suite();
  {
    std::vector<exec::Job> jobs;
    for (std::size_t j = 0; j < suite.size(); ++j) {
      jobs.push_back({&suite[j], before_sims, 7000 + j});
    }
    const auto stats = farm.run_all(l3, jobs);
    for (std::size_t j = 0; j < suite.size(); ++j) {
      repo.record(suite[j].name(), stats[j]);
    }
  }

  const auto target =
      neighbors::family_target(l3.space(), "byp_reqs", repo.total());
  std::cout << target.targets().size()
            << " byp_reqs events are uncovered after "
            << util::format_count(repo.total_sims()) << " regression sims\n\n";

  // Paper Fig. 4 budgets (scaled by default; pass a larger before_sims
  // to approach the paper's 1M-sim baseline).
  flow::FlowConfig config;
  config.sample_templates = 210;
  config.sample_sims = 100;
  config.opt_directions = 12;
  config.opt_sims_per_point = 100;
  config.opt_max_iterations = 25;
  config.harvest_sims = 15000;
  flow::CdgRunner runner(l3, farm, config);
  const auto result = runner.run(target, repo, suite);

  const auto family = l3.byp_family();
  const std::vector<coverage::EventId> events(family.begin(), family.end());
  const bool color = util::stdout_supports_color();

  std::cout << report::phase_caption(result) << "\n\n";
  report::phase_table(l3.space(), events, result).render(std::cout, color);

  std::cout << "\nOptimization progress (max target value per iteration, "
               "cf. paper Fig. 6):\n";
  report::render_trace(std::cout, result.optimization);

  std::cout << "\nHarvested test-template (add this to the regression "
               "suite):\n"
            << tgen::to_text(result.best_template);
  std::cout << "\nTotal simulations executed by the farm: "
            << util::format_count(farm.total_simulations()) << '\n';
  return 0;
}
