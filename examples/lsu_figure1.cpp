// The paper's Fig. 1, end to end: take the exact lsu_stress template
// from the figure, skeletonize it (showing the figure's (a) -> (b)
// transformation), and run the fine-grained search to push the
// store-forwarding queue family to depth 12.
//
//   $ ./lsu_figure1
#include <iostream>

#include "exec/thread_farm.hpp"
#include "flow/runner.hpp"
#include "duv/lsu.hpp"
#include "neighbors/neighbors.hpp"
#include "report/report.hpp"
#include "util/log.hpp"

int main() {
  using namespace ascdg;

  const duv::Lsu lsu;
  exec::ThreadFarm farm;

  // The figure's template is part of the unit's regression suite.
  const auto suite = lsu.suite();
  const tgen::TestTemplate* lsu_stress = nullptr;
  for (const auto& tmpl : suite) {
    if (tmpl.name() == "lsu_stress") lsu_stress = &tmpl;
  }
  if (lsu_stress == nullptr) return 1;

  std::cout << "Fig. 1(a) — the test-template:\n"
            << tgen::to_text(*lsu_stress) << '\n';

  const cdg::Skeletonizer skeletonizer;
  const auto skeleton = skeletonizer.skeletonize(*lsu_stress);
  std::cout << "Fig. 1(b) — the skeleton (note: add keeps its zero "
               "weight; the range became weighted subranges):\n"
            << tgen::to_text(skeleton) << '\n';

  // Before CDG: the full suite.
  coverage::CoverageRepository repo(lsu.space().size());
  for (std::size_t j = 0; j < suite.size(); ++j) {
    repo.record(suite[j].name(), farm.run(lsu, suite[j], 2500, 500 + j));
  }
  const auto target =
      neighbors::family_target(lsu.space(), "lsu_fwdq", repo.total());
  std::cout << "Uncovered forwarding-depth events: " << target.targets().size()
            << "\n\n";

  flow::FlowConfig config;
  config.sample_templates = 150;
  config.sample_sims = 60;
  config.opt_directions = 12;
  config.opt_sims_per_point = 120;
  config.opt_max_iterations = 15;
  config.harvest_sims = 4000;
  flow::CdgRunner runner(lsu, farm, config);
  const auto result = runner.run(target, repo, suite);

  const auto family = lsu.fwdq_family();
  const std::vector<coverage::EventId> events(family.begin(), family.end());
  std::cout << "Seed template (coarse search): " << result.seed_template
            << "\n\n";
  report::phase_table(lsu.space(), events, result)
      .render(std::cout, util::stdout_supports_color());
  std::cout << "\nHarvested test-template:\n"
            << tgen::to_text(result.best_template);
  return 0;
}
