// Coverage closure on the IFU's 256-event cross product (entry x thread
// x sector x branch) — the scenario of the paper's Fig. 5. Prints the
// per-phase event-status histogram; the 32 entry7 events are
// structurally unhittable and must remain red through every phase.
//
//   $ ./ifu_cross_product
#include <iostream>

#include "exec/thread_farm.hpp"
#include "flow/runner.hpp"
#include "coverage/holes.hpp"
#include "duv/ifu.hpp"
#include "neighbors/neighbors.hpp"
#include "report/report.hpp"
#include "util/log.hpp"

int main() {
  using namespace ascdg;

  const duv::Ifu ifu;
  exec::ThreadFarm farm;

  coverage::CoverageRepository repo(ifu.space().size());
  const auto suite = ifu.suite();
  for (std::size_t j = 0; j < suite.size(); ++j) {
    repo.record(suite[j].name(), farm.run(ifu, suite[j], 3000, 9000 + j));
  }

  const auto target =
      neighbors::family_target(ifu.space(), "ifu", repo.total());
  const auto family = ifu.space().family_events("ifu");
  std::cout << "Cross product: entry(0-7) x thread(0-3) x sector(0-3) x "
               "branch(0-1) = "
            << family.size() << " events; " << target.targets().size()
            << " uncovered before CDG\n\n";

  flow::FlowConfig config;
  config.sample_templates = 150;
  config.sample_sims = 60;
  config.opt_directions = 12;
  config.opt_sims_per_point = 120;
  config.opt_max_iterations = 12;
  config.harvest_sims = 8000;
  flow::CdgRunner runner(ifu, farm, config);
  const auto result = runner.run(target, repo, suite);

  const bool color = util::stdout_supports_color();
  std::cout << "Seed template: " << result.seed_template << "\n"
            << report::phase_caption(result) << "\n\n"
            << "Event status per phase (cf. paper Fig. 5; # = never-hit, "
               "= = lightly-hit, + = well-hit):\n";
  report::render_status_bars(std::cout, family, result, color);
  std::cout << '\n';
  report::status_table(ifu.space(), family, result).render(std::cout, color);

  // Verify the honest negative result: entry7 events stay uncovered.
  const auto& cp = ifu.cross_product();
  std::size_t entry7_never = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t s = 0; s < 4; ++s) {
      for (std::size_t b = 0; b < 2; ++b) {
        const std::size_t coords[4] = {7, t, s, b};
        if (result.harvest_phase.stats.hits(
                ifu.space().cross_event(cp, coords)) == 0) {
          ++entry7_never;
        }
      }
    }
  }
  std::cout << "\nentry7 events still uncovered (expected 32, out of unit "
               "capabilities): "
            << entry7_never << '\n';

  // Hole analysis explains WHY those events are uncovered: the end-of-
  // flow uncovered set projects onto a single compact hole.
  coverage::SimStats cumulative = result.sampling_phase.stats;
  cumulative.merge(result.optimization_phase.stats);
  cumulative.merge(result.harvest_phase.stats);
  std::cout << "\nCoverage holes at the end of the flow:\n";
  for (const auto& hole :
       coverage::find_holes(ifu.space(), cp, cumulative, 2)) {
    std::cout << "  " << coverage::describe(cp, hole) << '\n';
  }
  return 0;
}
