// A tour of the template DSL and the Skeletonizer (paper Fig. 1):
// parse a test-template, skeletonize it with different options, and
// instantiate the skeleton at a few points of the search space. Useful
// for understanding exactly what the fine-grained search tunes.
//
//   $ ./skeletonizer_tour
#include <iostream>

#include "cdg/skeletonizer.hpp"
#include "tgen/parser.hpp"
#include "util/rng.hpp"

int main() {
  using namespace ascdg;

  // The paper's Fig. 1(a) test-template.
  const auto tmpl = tgen::parse_template(R"(
    # Stress the load-store unit.
    template lsu_stress {
      weight Mnemonic { load: 40, store: 40, add: 0, sync: 20 }
      range CacheDelay [0, 1000]
    }
  )");
  std::cout << "Original test-template:\n" << tgen::to_text(tmpl) << '\n';

  // Default skeletonization: positive weights marked, zero weights kept,
  // ranges split into 4 uniform subranges.
  const cdg::Skeletonizer default_skeletonizer;
  const auto skel = default_skeletonizer.skeletonize(tmpl);
  std::cout << "Skeleton (cf. paper Fig. 1(b)):\n" << tgen::to_text(skel);
  std::cout << "Marks, in search-space order:\n";
  for (const auto& mark : skel.marks()) {
    std::cout << "  " << mark.to_string() << '\n';
  }
  std::cout << '\n';

  // Geometric subranges + marked zero weights.
  cdg::SkeletonizerOptions options;
  options.subranges = 5;
  options.spacing = cdg::SubrangeSpacing::kGeometric;
  options.mark_zero_weights = true;
  const auto skel2 = cdg::Skeletonizer(options).skeletonize(tmpl);
  std::cout << "Skeleton with geometric subranges and marked zeros:\n"
            << tgen::to_text(skel2) << '\n';

  // Instantiate at a few points of [0,1]^d: this is exactly what the
  // CDG-Runner does during random sampling and optimization.
  std::cout << "Instantiation at favor-short-delays point:\n";
  std::vector<double> favor_short(skel.mark_count(), 0.05);
  favor_short[0] = 1.0;  // Mnemonic[load]
  favor_short[3] = 1.0;  // CacheDelay[0..250]
  std::cout << tgen::to_text(skel.instantiate("short_delays", favor_short))
            << '\n';

  std::cout << "Random instantiations:\n";
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 2; ++i) {
    std::vector<double> point(skel.mark_count());
    for (double& w : point) w = rng.uniform();
    std::cout << tgen::to_text(
        skel.instantiate("random_" + std::to_string(i), point));
  }
  return 0;
}
