// Bringing your own design under verification.
//
// AS-CDG is "black box": it only needs (a) your coverage events, (b) a
// default test-template describing the generator's parameters, and (c)
// a simulate() call. This example wires a from-scratch toy DUV — a
// store queue whose fill-level family stq_fill_1..stq_fill_12 gets
// harder with depth — into the flow, without touching any library code.
//
//   $ ./custom_duv
#include <algorithm>
#include <iostream>

#include "exec/thread_farm.hpp"
#include "flow/runner.hpp"
#include "duv/duv.hpp"
#include "neighbors/neighbors.hpp"
#include "report/report.hpp"
#include "stimgen/sampler.hpp"
#include "tgen/parser.hpp"
#include "util/rng.hpp"

namespace {

using namespace ascdg;

/// A 12-deep store queue: stores enqueue, and the queue drains one
/// entry every `DrainPeriod` cycles. stq_fill_k fires when occupancy
/// reaches k. Deep fills need bursts of stores with short gaps.
class StoreQueueUnit final : public duv::Duv {
 public:
  static constexpr std::size_t kDepth = 12;

  StoreQueueUnit() : defaults_("stq_defaults") {
    std::vector<std::string> suffixes;
    for (std::size_t k = 1; k <= kDepth; ++k) {
      suffixes.push_back(std::to_string(k));
    }
    fill_events_ = space_.declare_family("stq_fill", suffixes);
    ev_store_ = space_.declare_event("stq_op_store");
    ev_load_ = space_.declare_event("stq_op_load");
    ev_full_reject_ = space_.declare_event("stq_full_reject");

    using tgen::RangeParameter;
    using tgen::Value;
    using tgen::WeightParameter;
    defaults_.add(WeightParameter{
        "Op", {{Value{"store"}, 30}, {Value{"load"}, 60}, {Value{"fence"}, 10}}});
    defaults_.add(RangeParameter{"OpGap", 0, 15});
    defaults_.add(RangeParameter{"DrainPeriod", 2, 10});
    defaults_.add(RangeParameter{"NumOps", 80, 200});
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "store_queue";
  }
  [[nodiscard]] const coverage::CoverageSpace& space() const noexcept override {
    return space_;
  }
  [[nodiscard]] const tgen::TestTemplate& defaults() const noexcept override {
    return defaults_;
  }

  [[nodiscard]] coverage::CoverageVector simulate(
      const tgen::TestTemplate& tmpl, std::uint64_t seed) const override {
    util::Xoshiro256 rng(seed);
    stimgen::ParameterSampler sampler(&tmpl, defaults_, rng);
    coverage::CoverageVector vec(space_.size());

    const std::int64_t num_ops = sampler.draw_range("NumOps");
    const std::int64_t drain_period = sampler.draw_range("DrainPeriod");
    std::int64_t now = 0;
    std::int64_t last_drain = 0;
    std::size_t occupancy = 0;
    std::size_t max_fill = 0;

    for (std::int64_t op = 0; op < num_ops; ++op) {
      now += sampler.draw_range("OpGap");
      while (occupancy > 0 && now - last_drain >= drain_period) {
        --occupancy;
        last_drain += drain_period;
      }
      if (occupancy == 0) last_drain = now;
      const auto kind = sampler.draw("Op").as_symbol();
      if (kind == "store") {
        vec.hit(ev_store_);
        if (occupancy >= kDepth) {
          vec.hit(ev_full_reject_);
        } else {
          ++occupancy;
          max_fill = std::max(max_fill, occupancy);
        }
      } else if (kind == "load") {
        vec.hit(ev_load_);
      } else {
        // fence: drains everything.
        occupancy = 0;
        last_drain = now;
      }
    }
    for (std::size_t k = 0; k < fill_events_.size(); ++k) {
      if (max_fill >= k + 1) vec.hit(fill_events_[k]);
    }
    return vec;
  }

  [[nodiscard]] std::vector<tgen::TestTemplate> suite() const override {
    return tgen::parse_templates(R"(
      template stq_default {
        weight Op { store: 30, load: 60, fence: 10 }
      }
      template stq_load_heavy {
        weight Op { store: 10, load: 85, fence: 5 }
      }
      template stq_store_smoke {
        weight Op { store: 55, load: 40, fence: 5 }
        range OpGap [0, 10]
      }
      template stq_fence_storm {
        weight Op { store: 30, load: 30, fence: 40 }
      }
    )");
  }

 private:
  coverage::CoverageSpace space_;
  tgen::TestTemplate defaults_;
  std::vector<coverage::EventId> fill_events_;
  coverage::EventId ev_store_{}, ev_load_{}, ev_full_reject_{};
};

}  // namespace

int main() {
  const StoreQueueUnit stq;
  exec::ThreadFarm farm;

  coverage::CoverageRepository repo(stq.space().size());
  for (const auto& tmpl : stq.suite()) {
    repo.record(tmpl.name(), farm.run(stq, tmpl, 2500, 11));
  }

  const auto target =
      neighbors::family_target(stq.space(), "stq_fill", repo.total());
  std::cout << "store-queue fill events uncovered before CDG: "
            << target.targets().size() << '\n';

  flow::FlowConfig config;
  config.sample_templates = 80;
  config.sample_sims = 40;
  config.opt_directions = 8;
  config.opt_sims_per_point = 80;
  config.opt_max_iterations = 8;
  config.harvest_sims = 3000;
  flow::CdgRunner runner(stq, farm, config);
  const auto result = runner.run(target, repo, stq.suite());

  const auto family = stq.space().family_events("stq_fill");
  std::cout << "Seed template: " << result.seed_template << "\n\n";
  report::phase_table(stq.space(), family, result)
      .render(std::cout, util::stdout_supports_color());
  std::cout << "\nHarvested template:\n" << tgen::to_text(result.best_template);
  return 0;
}
