# Empty compiler generated dependencies file for l3_bypass_closure.
# This may be replaced when dependencies are built.
