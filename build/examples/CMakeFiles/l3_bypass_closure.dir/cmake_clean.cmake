file(REMOVE_RECURSE
  "CMakeFiles/l3_bypass_closure.dir/l3_bypass_closure.cpp.o"
  "CMakeFiles/l3_bypass_closure.dir/l3_bypass_closure.cpp.o.d"
  "l3_bypass_closure"
  "l3_bypass_closure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l3_bypass_closure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
