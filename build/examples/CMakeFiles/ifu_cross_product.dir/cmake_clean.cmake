file(REMOVE_RECURSE
  "CMakeFiles/ifu_cross_product.dir/ifu_cross_product.cpp.o"
  "CMakeFiles/ifu_cross_product.dir/ifu_cross_product.cpp.o.d"
  "ifu_cross_product"
  "ifu_cross_product.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifu_cross_product.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
