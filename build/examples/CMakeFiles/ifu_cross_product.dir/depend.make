# Empty dependencies file for ifu_cross_product.
# This may be replaced when dependencies are built.
