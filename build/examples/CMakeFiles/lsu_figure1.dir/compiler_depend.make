# Empty compiler generated dependencies file for lsu_figure1.
# This may be replaced when dependencies are built.
