file(REMOVE_RECURSE
  "CMakeFiles/lsu_figure1.dir/lsu_figure1.cpp.o"
  "CMakeFiles/lsu_figure1.dir/lsu_figure1.cpp.o.d"
  "lsu_figure1"
  "lsu_figure1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsu_figure1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
