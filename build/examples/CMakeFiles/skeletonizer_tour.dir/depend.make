# Empty dependencies file for skeletonizer_tour.
# This may be replaced when dependencies are built.
