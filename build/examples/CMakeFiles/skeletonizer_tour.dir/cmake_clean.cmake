file(REMOVE_RECURSE
  "CMakeFiles/skeletonizer_tour.dir/skeletonizer_tour.cpp.o"
  "CMakeFiles/skeletonizer_tour.dir/skeletonizer_tour.cpp.o.d"
  "skeletonizer_tour"
  "skeletonizer_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skeletonizer_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
