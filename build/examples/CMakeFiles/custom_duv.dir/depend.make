# Empty dependencies file for custom_duv.
# This may be replaced when dependencies are built.
