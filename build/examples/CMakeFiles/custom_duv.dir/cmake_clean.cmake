file(REMOVE_RECURSE
  "CMakeFiles/custom_duv.dir/custom_duv.cpp.o"
  "CMakeFiles/custom_duv.dir/custom_duv.cpp.o.d"
  "custom_duv"
  "custom_duv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_duv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
