file(REMOVE_RECURSE
  "libascdg_coverage.a"
)
