
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coverage/holes.cpp" "src/coverage/CMakeFiles/ascdg_coverage.dir/holes.cpp.o" "gcc" "src/coverage/CMakeFiles/ascdg_coverage.dir/holes.cpp.o.d"
  "/root/repo/src/coverage/repository.cpp" "src/coverage/CMakeFiles/ascdg_coverage.dir/repository.cpp.o" "gcc" "src/coverage/CMakeFiles/ascdg_coverage.dir/repository.cpp.o.d"
  "/root/repo/src/coverage/repository_io.cpp" "src/coverage/CMakeFiles/ascdg_coverage.dir/repository_io.cpp.o" "gcc" "src/coverage/CMakeFiles/ascdg_coverage.dir/repository_io.cpp.o.d"
  "/root/repo/src/coverage/space.cpp" "src/coverage/CMakeFiles/ascdg_coverage.dir/space.cpp.o" "gcc" "src/coverage/CMakeFiles/ascdg_coverage.dir/space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ascdg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
