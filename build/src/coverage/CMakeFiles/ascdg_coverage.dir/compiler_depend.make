# Empty compiler generated dependencies file for ascdg_coverage.
# This may be replaced when dependencies are built.
