file(REMOVE_RECURSE
  "CMakeFiles/ascdg_coverage.dir/holes.cpp.o"
  "CMakeFiles/ascdg_coverage.dir/holes.cpp.o.d"
  "CMakeFiles/ascdg_coverage.dir/repository.cpp.o"
  "CMakeFiles/ascdg_coverage.dir/repository.cpp.o.d"
  "CMakeFiles/ascdg_coverage.dir/repository_io.cpp.o"
  "CMakeFiles/ascdg_coverage.dir/repository_io.cpp.o.d"
  "CMakeFiles/ascdg_coverage.dir/space.cpp.o"
  "CMakeFiles/ascdg_coverage.dir/space.cpp.o.d"
  "libascdg_coverage.a"
  "libascdg_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
