file(REMOVE_RECURSE
  "CMakeFiles/ascdg_tac.dir/tac.cpp.o"
  "CMakeFiles/ascdg_tac.dir/tac.cpp.o.d"
  "libascdg_tac.a"
  "libascdg_tac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_tac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
