# Empty compiler generated dependencies file for ascdg_tac.
# This may be replaced when dependencies are built.
