file(REMOVE_RECURSE
  "libascdg_tac.a"
)
