file(REMOVE_RECURSE
  "CMakeFiles/ascdg_cdg.dir/cdg_objective.cpp.o"
  "CMakeFiles/ascdg_cdg.dir/cdg_objective.cpp.o.d"
  "CMakeFiles/ascdg_cdg.dir/multi_target.cpp.o"
  "CMakeFiles/ascdg_cdg.dir/multi_target.cpp.o.d"
  "CMakeFiles/ascdg_cdg.dir/random_sample.cpp.o"
  "CMakeFiles/ascdg_cdg.dir/random_sample.cpp.o.d"
  "CMakeFiles/ascdg_cdg.dir/runner.cpp.o"
  "CMakeFiles/ascdg_cdg.dir/runner.cpp.o.d"
  "CMakeFiles/ascdg_cdg.dir/skeletonizer.cpp.o"
  "CMakeFiles/ascdg_cdg.dir/skeletonizer.cpp.o.d"
  "libascdg_cdg.a"
  "libascdg_cdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_cdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
