file(REMOVE_RECURSE
  "libascdg_cdg.a"
)
