# Empty dependencies file for ascdg_cdg.
# This may be replaced when dependencies are built.
