
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdg/cdg_objective.cpp" "src/cdg/CMakeFiles/ascdg_cdg.dir/cdg_objective.cpp.o" "gcc" "src/cdg/CMakeFiles/ascdg_cdg.dir/cdg_objective.cpp.o.d"
  "/root/repo/src/cdg/multi_target.cpp" "src/cdg/CMakeFiles/ascdg_cdg.dir/multi_target.cpp.o" "gcc" "src/cdg/CMakeFiles/ascdg_cdg.dir/multi_target.cpp.o.d"
  "/root/repo/src/cdg/random_sample.cpp" "src/cdg/CMakeFiles/ascdg_cdg.dir/random_sample.cpp.o" "gcc" "src/cdg/CMakeFiles/ascdg_cdg.dir/random_sample.cpp.o.d"
  "/root/repo/src/cdg/runner.cpp" "src/cdg/CMakeFiles/ascdg_cdg.dir/runner.cpp.o" "gcc" "src/cdg/CMakeFiles/ascdg_cdg.dir/runner.cpp.o.d"
  "/root/repo/src/cdg/skeletonizer.cpp" "src/cdg/CMakeFiles/ascdg_cdg.dir/skeletonizer.cpp.o" "gcc" "src/cdg/CMakeFiles/ascdg_cdg.dir/skeletonizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ascdg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/ascdg_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/ascdg_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/duv/CMakeFiles/ascdg_duv.dir/DependInfo.cmake"
  "/root/repo/build/src/batch/CMakeFiles/ascdg_batch.dir/DependInfo.cmake"
  "/root/repo/build/src/tac/CMakeFiles/ascdg_tac.dir/DependInfo.cmake"
  "/root/repo/build/src/neighbors/CMakeFiles/ascdg_neighbors.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ascdg_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/stimgen/CMakeFiles/ascdg_stimgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
