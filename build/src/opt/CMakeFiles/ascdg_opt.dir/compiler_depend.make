# Empty compiler generated dependencies file for ascdg_opt.
# This may be replaced when dependencies are built.
