file(REMOVE_RECURSE
  "libascdg_opt.a"
)
