file(REMOVE_RECURSE
  "CMakeFiles/ascdg_opt.dir/baselines.cpp.o"
  "CMakeFiles/ascdg_opt.dir/baselines.cpp.o.d"
  "CMakeFiles/ascdg_opt.dir/implicit_filtering.cpp.o"
  "CMakeFiles/ascdg_opt.dir/implicit_filtering.cpp.o.d"
  "CMakeFiles/ascdg_opt.dir/synthetic.cpp.o"
  "CMakeFiles/ascdg_opt.dir/synthetic.cpp.o.d"
  "libascdg_opt.a"
  "libascdg_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
