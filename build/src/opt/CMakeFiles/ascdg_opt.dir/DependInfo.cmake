
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/baselines.cpp" "src/opt/CMakeFiles/ascdg_opt.dir/baselines.cpp.o" "gcc" "src/opt/CMakeFiles/ascdg_opt.dir/baselines.cpp.o.d"
  "/root/repo/src/opt/implicit_filtering.cpp" "src/opt/CMakeFiles/ascdg_opt.dir/implicit_filtering.cpp.o" "gcc" "src/opt/CMakeFiles/ascdg_opt.dir/implicit_filtering.cpp.o.d"
  "/root/repo/src/opt/synthetic.cpp" "src/opt/CMakeFiles/ascdg_opt.dir/synthetic.cpp.o" "gcc" "src/opt/CMakeFiles/ascdg_opt.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ascdg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
