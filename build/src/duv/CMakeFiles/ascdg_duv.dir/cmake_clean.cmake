file(REMOVE_RECURSE
  "CMakeFiles/ascdg_duv.dir/ifu.cpp.o"
  "CMakeFiles/ascdg_duv.dir/ifu.cpp.o.d"
  "CMakeFiles/ascdg_duv.dir/io_unit.cpp.o"
  "CMakeFiles/ascdg_duv.dir/io_unit.cpp.o.d"
  "CMakeFiles/ascdg_duv.dir/l3_cache.cpp.o"
  "CMakeFiles/ascdg_duv.dir/l3_cache.cpp.o.d"
  "CMakeFiles/ascdg_duv.dir/lsu.cpp.o"
  "CMakeFiles/ascdg_duv.dir/lsu.cpp.o.d"
  "CMakeFiles/ascdg_duv.dir/registry.cpp.o"
  "CMakeFiles/ascdg_duv.dir/registry.cpp.o.d"
  "libascdg_duv.a"
  "libascdg_duv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_duv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
