file(REMOVE_RECURSE
  "libascdg_duv.a"
)
