# Empty compiler generated dependencies file for ascdg_duv.
# This may be replaced when dependencies are built.
