
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/duv/ifu.cpp" "src/duv/CMakeFiles/ascdg_duv.dir/ifu.cpp.o" "gcc" "src/duv/CMakeFiles/ascdg_duv.dir/ifu.cpp.o.d"
  "/root/repo/src/duv/io_unit.cpp" "src/duv/CMakeFiles/ascdg_duv.dir/io_unit.cpp.o" "gcc" "src/duv/CMakeFiles/ascdg_duv.dir/io_unit.cpp.o.d"
  "/root/repo/src/duv/l3_cache.cpp" "src/duv/CMakeFiles/ascdg_duv.dir/l3_cache.cpp.o" "gcc" "src/duv/CMakeFiles/ascdg_duv.dir/l3_cache.cpp.o.d"
  "/root/repo/src/duv/lsu.cpp" "src/duv/CMakeFiles/ascdg_duv.dir/lsu.cpp.o" "gcc" "src/duv/CMakeFiles/ascdg_duv.dir/lsu.cpp.o.d"
  "/root/repo/src/duv/registry.cpp" "src/duv/CMakeFiles/ascdg_duv.dir/registry.cpp.o" "gcc" "src/duv/CMakeFiles/ascdg_duv.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ascdg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/ascdg_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/stimgen/CMakeFiles/ascdg_stimgen.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/ascdg_coverage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
