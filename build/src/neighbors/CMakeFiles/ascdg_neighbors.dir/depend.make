# Empty dependencies file for ascdg_neighbors.
# This may be replaced when dependencies are built.
