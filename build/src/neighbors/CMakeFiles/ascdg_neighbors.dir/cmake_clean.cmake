file(REMOVE_RECURSE
  "CMakeFiles/ascdg_neighbors.dir/neighbors.cpp.o"
  "CMakeFiles/ascdg_neighbors.dir/neighbors.cpp.o.d"
  "libascdg_neighbors.a"
  "libascdg_neighbors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_neighbors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
