file(REMOVE_RECURSE
  "libascdg_neighbors.a"
)
