# Empty compiler generated dependencies file for ascdg_report.
# This may be replaced when dependencies are built.
