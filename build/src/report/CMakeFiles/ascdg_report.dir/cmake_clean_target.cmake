file(REMOVE_RECURSE
  "libascdg_report.a"
)
