file(REMOVE_RECURSE
  "CMakeFiles/ascdg_report.dir/report.cpp.o"
  "CMakeFiles/ascdg_report.dir/report.cpp.o.d"
  "libascdg_report.a"
  "libascdg_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
