file(REMOVE_RECURSE
  "CMakeFiles/ascdg_batch.dir/sim_farm.cpp.o"
  "CMakeFiles/ascdg_batch.dir/sim_farm.cpp.o.d"
  "libascdg_batch.a"
  "libascdg_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
