file(REMOVE_RECURSE
  "libascdg_batch.a"
)
