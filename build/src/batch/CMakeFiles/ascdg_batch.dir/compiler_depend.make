# Empty compiler generated dependencies file for ascdg_batch.
# This may be replaced when dependencies are built.
