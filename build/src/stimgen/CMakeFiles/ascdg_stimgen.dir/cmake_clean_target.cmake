file(REMOVE_RECURSE
  "libascdg_stimgen.a"
)
