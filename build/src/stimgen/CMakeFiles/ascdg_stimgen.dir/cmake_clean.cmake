file(REMOVE_RECURSE
  "CMakeFiles/ascdg_stimgen.dir/profile.cpp.o"
  "CMakeFiles/ascdg_stimgen.dir/profile.cpp.o.d"
  "CMakeFiles/ascdg_stimgen.dir/sampler.cpp.o"
  "CMakeFiles/ascdg_stimgen.dir/sampler.cpp.o.d"
  "libascdg_stimgen.a"
  "libascdg_stimgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_stimgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
