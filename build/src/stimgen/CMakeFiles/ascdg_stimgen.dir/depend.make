# Empty dependencies file for ascdg_stimgen.
# This may be replaced when dependencies are built.
