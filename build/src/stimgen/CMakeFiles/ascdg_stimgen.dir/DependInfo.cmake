
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stimgen/profile.cpp" "src/stimgen/CMakeFiles/ascdg_stimgen.dir/profile.cpp.o" "gcc" "src/stimgen/CMakeFiles/ascdg_stimgen.dir/profile.cpp.o.d"
  "/root/repo/src/stimgen/sampler.cpp" "src/stimgen/CMakeFiles/ascdg_stimgen.dir/sampler.cpp.o" "gcc" "src/stimgen/CMakeFiles/ascdg_stimgen.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ascdg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/ascdg_tgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
