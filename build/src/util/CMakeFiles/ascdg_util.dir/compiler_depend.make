# Empty compiler generated dependencies file for ascdg_util.
# This may be replaced when dependencies are built.
