file(REMOVE_RECURSE
  "CMakeFiles/ascdg_util.dir/error.cpp.o"
  "CMakeFiles/ascdg_util.dir/error.cpp.o.d"
  "CMakeFiles/ascdg_util.dir/log.cpp.o"
  "CMakeFiles/ascdg_util.dir/log.cpp.o.d"
  "CMakeFiles/ascdg_util.dir/rng.cpp.o"
  "CMakeFiles/ascdg_util.dir/rng.cpp.o.d"
  "CMakeFiles/ascdg_util.dir/stats.cpp.o"
  "CMakeFiles/ascdg_util.dir/stats.cpp.o.d"
  "CMakeFiles/ascdg_util.dir/strings.cpp.o"
  "CMakeFiles/ascdg_util.dir/strings.cpp.o.d"
  "CMakeFiles/ascdg_util.dir/table.cpp.o"
  "CMakeFiles/ascdg_util.dir/table.cpp.o.d"
  "libascdg_util.a"
  "libascdg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
