file(REMOVE_RECURSE
  "libascdg_util.a"
)
