
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tgen/file_io.cpp" "src/tgen/CMakeFiles/ascdg_tgen.dir/file_io.cpp.o" "gcc" "src/tgen/CMakeFiles/ascdg_tgen.dir/file_io.cpp.o.d"
  "/root/repo/src/tgen/parameter.cpp" "src/tgen/CMakeFiles/ascdg_tgen.dir/parameter.cpp.o" "gcc" "src/tgen/CMakeFiles/ascdg_tgen.dir/parameter.cpp.o.d"
  "/root/repo/src/tgen/parser.cpp" "src/tgen/CMakeFiles/ascdg_tgen.dir/parser.cpp.o" "gcc" "src/tgen/CMakeFiles/ascdg_tgen.dir/parser.cpp.o.d"
  "/root/repo/src/tgen/skeleton.cpp" "src/tgen/CMakeFiles/ascdg_tgen.dir/skeleton.cpp.o" "gcc" "src/tgen/CMakeFiles/ascdg_tgen.dir/skeleton.cpp.o.d"
  "/root/repo/src/tgen/test_template.cpp" "src/tgen/CMakeFiles/ascdg_tgen.dir/test_template.cpp.o" "gcc" "src/tgen/CMakeFiles/ascdg_tgen.dir/test_template.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ascdg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
