# Empty dependencies file for ascdg_tgen.
# This may be replaced when dependencies are built.
