file(REMOVE_RECURSE
  "CMakeFiles/ascdg_tgen.dir/file_io.cpp.o"
  "CMakeFiles/ascdg_tgen.dir/file_io.cpp.o.d"
  "CMakeFiles/ascdg_tgen.dir/parameter.cpp.o"
  "CMakeFiles/ascdg_tgen.dir/parameter.cpp.o.d"
  "CMakeFiles/ascdg_tgen.dir/parser.cpp.o"
  "CMakeFiles/ascdg_tgen.dir/parser.cpp.o.d"
  "CMakeFiles/ascdg_tgen.dir/skeleton.cpp.o"
  "CMakeFiles/ascdg_tgen.dir/skeleton.cpp.o.d"
  "CMakeFiles/ascdg_tgen.dir/test_template.cpp.o"
  "CMakeFiles/ascdg_tgen.dir/test_template.cpp.o.d"
  "libascdg_tgen.a"
  "libascdg_tgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_tgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
