file(REMOVE_RECURSE
  "libascdg_tgen.a"
)
