file(REMOVE_RECURSE
  "CMakeFiles/ascdg_cli.dir/ascdg_cli.cpp.o"
  "CMakeFiles/ascdg_cli.dir/ascdg_cli.cpp.o.d"
  "ascdg"
  "ascdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ascdg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
