# Empty compiler generated dependencies file for ascdg_cli.
# This may be replaced when dependencies are built.
