# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_units "/root/repo/build/tools/ascdg" "units")
set_tests_properties(cli_units PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_events "/root/repo/build/tools/ascdg" "events" "io_unit" "crc_")
set_tests_properties(cli_events PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_suite "/root/repo/build/tools/ascdg" "suite" "lsu")
set_tests_properties(cli_suite PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/ascdg" "profile" "io_unit" "--sims" "50")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_policy "/root/repo/build/tools/ascdg" "policy" "l3_cache" "--sims" "200")
set_tests_properties(cli_policy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_holes "/root/repo/build/tools/ascdg" "holes" "ifu" "--family" "ifu" "--sims" "300")
set_tests_properties(cli_holes PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/ascdg" "bogus_command")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
