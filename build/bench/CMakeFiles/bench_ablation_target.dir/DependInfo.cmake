
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_target.cpp" "bench/CMakeFiles/bench_ablation_target.dir/bench_ablation_target.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_target.dir/bench_ablation_target.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/report/CMakeFiles/ascdg_report.dir/DependInfo.cmake"
  "/root/repo/build/src/cdg/CMakeFiles/ascdg_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/batch/CMakeFiles/ascdg_batch.dir/DependInfo.cmake"
  "/root/repo/build/src/duv/CMakeFiles/ascdg_duv.dir/DependInfo.cmake"
  "/root/repo/build/src/stimgen/CMakeFiles/ascdg_stimgen.dir/DependInfo.cmake"
  "/root/repo/build/src/tgen/CMakeFiles/ascdg_tgen.dir/DependInfo.cmake"
  "/root/repo/build/src/neighbors/CMakeFiles/ascdg_neighbors.dir/DependInfo.cmake"
  "/root/repo/build/src/tac/CMakeFiles/ascdg_tac.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/ascdg_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ascdg_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ascdg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
