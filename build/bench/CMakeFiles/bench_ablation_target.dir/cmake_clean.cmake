file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_target.dir/bench_ablation_target.cpp.o"
  "CMakeFiles/bench_ablation_target.dir/bench_ablation_target.cpp.o.d"
  "bench_ablation_target"
  "bench_ablation_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
