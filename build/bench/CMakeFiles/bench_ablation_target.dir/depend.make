# Empty dependencies file for bench_ablation_target.
# This may be replaced when dependencies are built.
