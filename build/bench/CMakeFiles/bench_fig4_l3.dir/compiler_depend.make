# Empty compiler generated dependencies file for bench_fig4_l3.
# This may be replaced when dependencies are built.
