file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hyper.dir/bench_ablation_hyper.cpp.o"
  "CMakeFiles/bench_ablation_hyper.dir/bench_ablation_hyper.cpp.o.d"
  "bench_ablation_hyper"
  "bench_ablation_hyper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hyper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
