# Empty compiler generated dependencies file for bench_ablation_hyper.
# This may be replaced when dependencies are built.
