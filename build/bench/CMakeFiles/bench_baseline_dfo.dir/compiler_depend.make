# Empty compiler generated dependencies file for bench_baseline_dfo.
# This may be replaced when dependencies are built.
