file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_dfo.dir/bench_baseline_dfo.cpp.o"
  "CMakeFiles/bench_baseline_dfo.dir/bench_baseline_dfo.cpp.o.d"
  "bench_baseline_dfo"
  "bench_baseline_dfo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_dfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
