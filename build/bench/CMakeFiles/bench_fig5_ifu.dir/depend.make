# Empty dependencies file for bench_fig5_ifu.
# This may be replaced when dependencies are built.
