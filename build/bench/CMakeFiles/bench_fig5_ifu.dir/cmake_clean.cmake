file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_ifu.dir/bench_fig5_ifu.cpp.o"
  "CMakeFiles/bench_fig5_ifu.dir/bench_fig5_ifu.cpp.o.d"
  "bench_fig5_ifu"
  "bench_fig5_ifu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_ifu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
