# Empty compiler generated dependencies file for bench_multi_target.
# This may be replaced when dependencies are built.
