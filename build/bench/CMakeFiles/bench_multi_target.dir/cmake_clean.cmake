file(REMOVE_RECURSE
  "CMakeFiles/bench_multi_target.dir/bench_multi_target.cpp.o"
  "CMakeFiles/bench_multi_target.dir/bench_multi_target.cpp.o.d"
  "bench_multi_target"
  "bench_multi_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multi_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
