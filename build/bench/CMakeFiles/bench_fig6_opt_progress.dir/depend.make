# Empty dependencies file for bench_fig6_opt_progress.
# This may be replaced when dependencies are built.
