file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_opt_progress.dir/bench_fig6_opt_progress.cpp.o"
  "CMakeFiles/bench_fig6_opt_progress.dir/bench_fig6_opt_progress.cpp.o.d"
  "bench_fig6_opt_progress"
  "bench_fig6_opt_progress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_opt_progress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
