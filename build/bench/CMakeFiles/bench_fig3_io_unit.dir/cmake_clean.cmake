file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_io_unit.dir/bench_fig3_io_unit.cpp.o"
  "CMakeFiles/bench_fig3_io_unit.dir/bench_fig3_io_unit.cpp.o.d"
  "bench_fig3_io_unit"
  "bench_fig3_io_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_io_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
