# Empty compiler generated dependencies file for bench_fig3_io_unit.
# This may be replaced when dependencies are built.
