# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/tgen_test[1]_include.cmake")
include("/root/repo/build/tests/stimgen_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
include("/root/repo/build/tests/duv_test[1]_include.cmake")
include("/root/repo/build/tests/batch_test[1]_include.cmake")
include("/root/repo/build/tests/tac_test[1]_include.cmake")
include("/root/repo/build/tests/neighbors_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/cdg_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
