file(REMOVE_RECURSE
  "CMakeFiles/cdg_test.dir/cdg_test.cpp.o"
  "CMakeFiles/cdg_test.dir/cdg_test.cpp.o.d"
  "cdg_test"
  "cdg_test.pdb"
  "cdg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
