# Empty compiler generated dependencies file for cdg_test.
# This may be replaced when dependencies are built.
