file(REMOVE_RECURSE
  "CMakeFiles/duv_test.dir/duv_test.cpp.o"
  "CMakeFiles/duv_test.dir/duv_test.cpp.o.d"
  "duv_test"
  "duv_test.pdb"
  "duv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/duv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
