# Empty compiler generated dependencies file for duv_test.
# This may be replaced when dependencies are built.
