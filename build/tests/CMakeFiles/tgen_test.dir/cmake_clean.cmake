file(REMOVE_RECURSE
  "CMakeFiles/tgen_test.dir/tgen_test.cpp.o"
  "CMakeFiles/tgen_test.dir/tgen_test.cpp.o.d"
  "tgen_test"
  "tgen_test.pdb"
  "tgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
