# Empty dependencies file for tgen_test.
# This may be replaced when dependencies are built.
