# Empty dependencies file for tac_test.
# This may be replaced when dependencies are built.
