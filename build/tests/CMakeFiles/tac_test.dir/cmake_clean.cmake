file(REMOVE_RECURSE
  "CMakeFiles/tac_test.dir/tac_test.cpp.o"
  "CMakeFiles/tac_test.dir/tac_test.cpp.o.d"
  "tac_test"
  "tac_test.pdb"
  "tac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
