file(REMOVE_RECURSE
  "CMakeFiles/neighbors_test.dir/neighbors_test.cpp.o"
  "CMakeFiles/neighbors_test.dir/neighbors_test.cpp.o.d"
  "neighbors_test"
  "neighbors_test.pdb"
  "neighbors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighbors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
