# Empty dependencies file for neighbors_test.
# This may be replaced when dependencies are built.
