# Empty dependencies file for stimgen_test.
# This may be replaced when dependencies are built.
