file(REMOVE_RECURSE
  "CMakeFiles/stimgen_test.dir/stimgen_test.cpp.o"
  "CMakeFiles/stimgen_test.dir/stimgen_test.cpp.o.d"
  "stimgen_test"
  "stimgen_test.pdb"
  "stimgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stimgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
